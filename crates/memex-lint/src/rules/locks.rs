//! Rule family 2: **lock discipline** — the poor man's deadlock detector.
//!
//! Extraction: every `.lock()` / `.read()` / `.write()` call **with empty
//! argument parens** is a lock acquisition (the empty parens keep
//! `io::Read::read(buf)` and `io::Write::write(buf)` out). The receiver
//! path (`shared.memex`, `self.state`, `rx`) is resolved to a declared
//! lock name through `[locks.aliases]` in `LINT.toml`.
//!
//! Guard lifetime is approximated from the token stream: a let-bound
//! guard lives to the end of its enclosing brace scope; a temporary
//! (`x.lock().unwrap().field`) lives to the `;` that ends its statement.
//! This over-approximates (an early `drop(guard)` is invisible), which is
//! the safe direction for a deadlock detector — the baseline absorbs
//! deliberate false positives.
//!
//! Checks, for every acquisition of `B` while `A` is (possibly) held:
//! - `A` and `B` both in `[locks] order` → the nesting must follow the
//!   declared order (`rank(A) < rank(B)`).
//! - Same lock nested inside itself → recursive-acquisition finding
//!   (`std::sync::Mutex` self-deadlocks).
//! - Either side unresolvable through the aliases → *undeclared nested
//!   acquisition*: nesting is exactly when a lock must be named and
//!   ordered.
//! - Declared-but-unordered pairs accumulate into a workspace-wide
//!   nesting graph; a cycle anywhere in it fails the run, naming the
//!   participating edges.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{Config, Rule};
use crate::lexer::Tok;
use crate::parse::FileModel;
use crate::rules::Finding;

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub(crate) struct Acq {
    /// Receiver path as written, e.g. `shared.memex`.
    pub(crate) path: String,
    /// Resolved lock name, if an alias matched.
    pub(crate) name: Option<String>,
    pub(crate) line: usize,
    pub(crate) token: usize,
    pub(crate) depth: usize,
    /// True when the guard is let-bound (scope lifetime); false for a
    /// temporary (statement lifetime).
    pub(crate) let_bound: bool,
    pub(crate) fn_id: usize,
}

/// A nested acquisition `outer → inner` observed somewhere.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub outer: String,
    pub inner: String,
    pub file: String,
    pub line: usize,
    pub function: String,
}

/// Per-workspace accumulator: findings are immediate; edges between
/// declared-but-unordered locks wait for the cycle pass.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    pub findings: Vec<Finding>,
    pub edges: Vec<Edge>,
}

fn method_at(model: &FileModel, i: usize) -> Option<&str> {
    match &model.tokens[i].tok {
        Tok::Ident(s) if s == "lock" || s == "read" || s == "write" => Some(s),
        _ => None,
    }
}

fn punct_at(model: &FileModel, i: usize, c: char) -> bool {
    matches!(model.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Walk back from the `.` before the method to collect the receiver path.
pub(crate) fn receiver_path(model: &FileModel, dot: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut i = dot; // index of the `.` token
    loop {
        if i == 0 {
            break;
        }
        match &model.tokens[i - 1].tok {
            Tok::Ident(s) => {
                parts.push(s);
                // Continue only across another `.`
                if i >= 2 && punct_at(model, i - 2, '.') {
                    i -= 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.join(".")
}

/// Was the statement containing token `i` started with `let`? Scans back
/// to the nearest statement boundary (`;`, `{`, `}`).
fn statement_has_let(model: &FileModel, i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &model.tokens[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return false,
            Tok::Ident(s) if s == "let" => return true,
            _ => {}
        }
    }
    false
}

/// Collect every acquisition in non-test functions of this file.
pub(crate) fn acquisitions(model: &FileModel) -> Vec<Acq> {
    let mut out = Vec::new();
    for i in 0..model.tokens.len() {
        if model.in_test[i] {
            continue;
        }
        let Some(fn_id) = model.fn_of[i] else {
            continue;
        };
        if method_at(model, i).is_none() {
            continue;
        }
        // Shape: `.` method `(` `)`
        if i == 0
            || !punct_at(model, i - 1, '.')
            || !punct_at(model, i + 1, '(')
            || !punct_at(model, i + 2, ')')
        {
            continue;
        }
        let path = receiver_path(model, i - 1);
        if path.is_empty() {
            continue;
        }
        out.push(Acq {
            path,
            name: None,
            line: model.tokens[i].line,
            token: i,
            depth: model.depth[i],
            let_bound: statement_has_let(model, i),
            fn_id,
        });
    }
    out
}

/// Token index where the guard acquired at `acq` stops being held (the
/// over-approximation described in the module docs). Body tokens and
/// the closing `}` of a scope share the same depth, so the brace that
/// ends the acquiring scope is the first `}` at `depth <= acq.depth`.
pub(crate) fn held_until(model: &FileModel, acq: &Acq) -> usize {
    let n = model.tokens.len();
    for j in acq.token + 1..n {
        match &model.tokens[j].tok {
            Tok::Punct('}') if model.depth[j] <= acq.depth => return j,
            Tok::Punct(';') if !acq.let_bound && model.depth[j] == acq.depth => return j,
            _ => {}
        }
    }
    n
}

/// Analyze one file, appending findings and nesting edges.
pub fn check(model: &FileModel, file: &str, cfg: &Config, analysis: &mut LockAnalysis) {
    let mut acqs = acquisitions(model);
    for acq in &mut acqs {
        acq.name = cfg.resolve_lock(file, &acq.path).map(|s| s.to_string());
    }
    for (ai, a) in acqs.iter().enumerate() {
        let a_end = held_until(model, a);
        for b in acqs.iter().skip(ai + 1) {
            if b.fn_id != a.fn_id || b.token >= a_end {
                continue;
            }
            // `b` is acquired while `a` may still be held.
            let function = model.fn_name(b.token).to_string();
            let mut fail = |message: String| {
                analysis.findings.push(Finding {
                    rule: Rule::Locks,
                    file: file.to_string(),
                    line: b.line,
                    function: function.clone(),
                    message,
                });
            };
            match (&a.name, &b.name) {
                (Some(an), Some(bn)) if an == bn => {
                    fail(format!(
                        "recursive acquisition of `{an}` (outer at line {}): \
                         std::sync primitives self-deadlock",
                        a.line
                    ));
                }
                (Some(an), Some(bn)) => {
                    match (cfg.lock_rank(an), cfg.lock_rank(bn)) {
                        (Some(ra), Some(rb)) if ra >= rb => {
                            fail(format!(
                                "lock order violation: `{bn}` (rank {rb}) acquired \
                                 while `{an}` (rank {ra}, outer at line {}) is held — \
                                 declared order requires `{bn}` before `{an}`",
                                a.line
                            ));
                        }
                        (Some(_), Some(_)) => {} // declared and ordered correctly
                        _ => {
                            // Declared (aliased) but not ranked: feed the
                            // cycle detector.
                            analysis.edges.push(Edge {
                                outer: an.clone(),
                                inner: bn.clone(),
                                file: file.to_string(),
                                line: b.line,
                                function,
                            });
                        }
                    }
                }
                _ => {
                    let unnamed = if a.name.is_none() { &a.path } else { &b.path };
                    fail(format!(
                        "undeclared nested acquisition: `{}` inside `{}` — give \
                         `{unnamed}` a name in [locks.aliases] and a rank in \
                         [locks] order",
                        b.path, a.path
                    ));
                }
            }
        }
    }
}

/// Cross-function lock discipline: for every acquisition of `A` whose
/// guard region contains a call, the callee's transitive lock summary
/// (bounded depth, via [`crate::dataflow`]) is checked against `A` —
/// recursion, order violations, and undeclared acquisitions are all
/// flagged with the call chain that reaches the inner lock. This is the
/// interprocedural twin of [`check`]: neither nesting is visible in one
/// body, but `f { lock A; g() }` + `g { lock B }` is still `A → B`.
///
/// Same-body pairs are [`check`]'s business and are not re-reported
/// here. Declared-but-unordered pairs feed the same cycle detector.
pub fn check_cross(
    files: &[crate::callgraph::FileUnit],
    graph: &crate::callgraph::CallGraph,
    flow: &crate::dataflow::Dataflow,
    cfg: &Config,
    analysis: &mut LockAnalysis,
) {
    use crate::dataflow::{render_chain, EffectKind};
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.in_test {
            continue;
        }
        let model = &files[node.file_idx].model;
        for held in &flow.direct[id].locks {
            for call in &graph.calls[id] {
                if call.token <= held.token || call.token >= held.until {
                    continue;
                }
                let function = model.fn_name(call.token).to_string();
                for e in flow.effects_of_call(graph, call.callee, call.line) {
                    let chain = render_chain(&e.hops);
                    let mut fail = |message: String| {
                        analysis.findings.push(Finding {
                            rule: Rule::CrossLocks,
                            file: node.file.clone(),
                            line: call.line,
                            function: function.clone(),
                            message,
                        });
                    };
                    match (e.kind, held.name.as_deref()) {
                        (EffectKind::UndeclaredLock, _) => {
                            fail(format!(
                                "undeclared nested acquisition across calls: `{}` \
                                 ({}:{}) acquired while `{}` (line {}) is held{chain} — \
                                 give `{}` a name in [locks.aliases] and a rank in \
                                 [locks] order",
                                e.name, e.file, e.line, held.path, held.line, e.name
                            ));
                        }
                        (EffectKind::Lock, Some(outer)) if e.name == outer => {
                            fail(format!(
                                "recursive acquisition of `{outer}` across calls \
                                 (outer at line {}, inner at {}:{}){chain}: \
                                 std::sync primitives self-deadlock",
                                held.line, e.file, e.line
                            ));
                        }
                        (EffectKind::Lock, Some(outer)) => {
                            match (cfg.lock_rank(outer), cfg.lock_rank(&e.name)) {
                                (Some(ra), Some(rb)) if ra >= rb => {
                                    fail(format!(
                                        "cross-function lock order violation: `{}` \
                                         (rank {rb}, at {}:{}) acquired while `{outer}` \
                                         (rank {ra}, outer at line {}) is held{chain} — \
                                         declared order requires `{}` before `{outer}`",
                                        e.name, e.file, e.line, held.line, e.name
                                    ));
                                }
                                (Some(_), Some(_)) => {}
                                _ => {
                                    analysis.edges.push(Edge {
                                        outer: outer.to_string(),
                                        inner: e.name.clone(),
                                        file: node.file.clone(),
                                        line: call.line,
                                        function: function.clone(),
                                    });
                                }
                            }
                        }
                        // Outer lock undeclared: the intra-function rule
                        // already flags the acquisition site's nesting;
                        // here we only care once the callee side names a
                        // lock, handled above.
                        (EffectKind::Lock, None) => {
                            fail(format!(
                                "undeclared nested acquisition across calls: `{}` \
                                 ({}:{}) acquired while undeclared `{}` (line {}) is \
                                 held{chain} — give `{}` a name in [locks.aliases]",
                                e.name, e.file, e.line, held.path, held.line, held.path
                            ));
                        }
                        (EffectKind::Blocking, _) => {}
                    }
                }
            }
        }
    }
}

/// Cycle pass over the accumulated nesting graph (runs once per
/// workspace). Any strongly-connected component with a cycle fails each
/// participating edge.
pub fn cycle_findings(edges: &[Edge]) -> Vec<Finding> {
    // Adjacency over distinct lock names.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.outer).or_default().insert(&e.inner);
    }
    // A name is cyclic when it can reach itself.
    let mut cyclic: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        let mut stack: Vec<&str> = adj.get(start).into_iter().flatten().copied().collect();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == start {
                cyclic.insert(start);
                break;
            }
            if seen.insert(node) {
                stack.extend(adj.get(node).into_iter().flatten().copied());
            }
        }
    }
    let mut out = Vec::new();
    for e in edges {
        if cyclic.contains(e.outer.as_str()) && cyclic.contains(e.inner.as_str()) {
            out.push(Finding {
                rule: Rule::Locks,
                file: e.file.clone(),
                line: e.line,
                function: e.function.clone(),
                message: format!(
                    "lock nesting cycle: `{}` → `{}` participates in a cycle — \
                     declare a total order for these locks in [locks] order",
                    e.outer, e.inner
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::model;

    fn cfg(order: &[&str], aliases: &[(&str, &str)]) -> Config {
        let mut c = Config {
            lock_order: order.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        };
        for (k, v) in aliases {
            c.lock_aliases.insert(k.to_string(), v.to_string());
        }
        c
    }

    fn run(src: &str, cfg: &Config) -> LockAnalysis {
        let mut analysis = LockAnalysis::default();
        check(&model(lex(src)), "x.rs", cfg, &mut analysis);
        analysis
    }

    #[test]
    fn ordered_nesting_passes_and_reversed_fails() {
        let c = cfg(
            &["outer.lock", "inner.lock"],
            &[("a", "outer.lock"), ("b", "inner.lock")],
        );
        let good = r#"
            fn f(a: M, b: M) {
                let ga = a.lock();
                let gb = b.lock();
            }
        "#;
        assert!(run(good, &c).findings.is_empty());
        let bad = r#"
            fn f(a: M, b: M) {
                let gb = b.lock();
                let ga = a.lock();
            }
        "#;
        let got = run(bad, &c);
        assert_eq!(got.findings.len(), 1, "{:?}", got.findings);
        assert!(got.findings[0].message.contains("lock order violation"));
    }

    #[test]
    fn temporaries_end_at_statement_boundary() {
        let c = cfg(
            &["outer.lock", "inner.lock"],
            &[("a", "outer.lock"), ("b", "inner.lock")],
        );
        // Reversed order, but the first guard is a temporary dropped at
        // the `;` — no nesting.
        let src = r#"
            fn f(a: M, b: M) {
                b.lock();
                let ga = a.lock();
            }
        "#;
        assert!(run(src, &c).findings.is_empty());
    }

    #[test]
    fn inner_block_guard_ends_at_the_block() {
        // The read-then-write upgrade idiom: the first guard is let-bound
        // inside an inner block and dropped at its `}` — no recursion.
        let c = cfg(&["m.lock"], &[("m", "m.lock")]);
        let src = r#"
            fn f(m: L) -> u32 {
                {
                    let g = m.read();
                    if g.ready { return g.value; }
                }
                let mut g = m.write();
                g.value
            }
        "#;
        assert!(run(src, &c).findings.is_empty());
    }

    #[test]
    fn recursive_acquisition_is_flagged() {
        let c = cfg(&["m.lock"], &[("m", "m.lock")]);
        let src = r#"
            fn f(m: M) {
                let g1 = m.lock();
                let g2 = m.lock();
            }
        "#;
        let got = run(src, &c);
        assert_eq!(got.findings.len(), 1);
        assert!(got.findings[0].message.contains("recursive"));
    }

    #[test]
    fn undeclared_nested_lock_is_flagged() {
        let c = cfg(&["outer.lock"], &[("a", "outer.lock")]);
        let src = r#"
            fn f(a: M, mystery: M) {
                let ga = a.lock();
                let gm = mystery.lock();
            }
        "#;
        let got = run(src, &c);
        assert_eq!(got.findings.len(), 1);
        assert!(got.findings[0].message.contains("undeclared"));
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        let c = cfg(&[], &[]);
        let src = r#"
            fn f(s: &mut TcpStream, buf: &mut Vec<u8>) {
                s.read(buf);
                s.write(buf);
                s.read_exact(buf);
            }
        "#;
        let got = run(src, &c);
        assert!(got.findings.is_empty());
        assert!(got.edges.is_empty());
    }

    #[test]
    fn unordered_declared_pair_feeds_cycle_detector() {
        // Aliased but NOT in [locks] order: f1 nests a→b, f2 nests b→a.
        let c = cfg(&[], &[("a", "lock.a"), ("b", "lock.b")]);
        let src = r#"
            fn f1(a: M, b: M) {
                let ga = a.read();
                let gb = b.write();
            }
            fn f2(a: M, b: M) {
                let gb = b.read();
                let ga = a.write();
            }
        "#;
        let got = run(src, &c);
        assert!(got.findings.is_empty(), "{:?}", got.findings);
        assert_eq!(got.edges.len(), 2);
        let cycles = cycle_findings(&got.edges);
        assert_eq!(cycles.len(), 2, "both edges of the cycle are named");
        assert!(cycles[0].message.contains("cycle"));
    }

    #[test]
    fn acyclic_unordered_edges_pass() {
        let c = cfg(&[], &[("a", "lock.a"), ("b", "lock.b")]);
        let src = r#"
            fn f1(a: M, b: M) {
                let ga = a.lock();
                let gb = b.lock();
            }
        "#;
        let got = run(src, &c);
        assert!(got.findings.is_empty());
        assert!(cycle_findings(&got.edges).is_empty());
    }

    fn run_cross(src: &str, c: &Config) -> LockAnalysis {
        let files = vec![crate::callgraph::FileUnit {
            path: "x.rs".into(),
            crate_name: "t".into(),
            model: model(lex(src)),
        }];
        let graph = crate::callgraph::CallGraph::build(&files);
        let flow = crate::dataflow::Dataflow::build(&files, &graph, c);
        let mut analysis = LockAnalysis::default();
        check_cross(&files, &graph, &flow, c, &mut analysis);
        analysis
    }

    #[test]
    fn cross_function_order_violation_is_flagged_with_chain() {
        let c = cfg(
            &["outer.lock", "inner.lock"],
            &[("a", "outer.lock"), ("b", "inner.lock")],
        );
        // Correct nesting across calls passes…
        let good = r#"
            fn helper(b: M) { let g = b.lock(); }
            fn f(a: M, b: M) {
                let ga = a.lock();
                helper(b);
            }
        "#;
        assert!(run_cross(good, &c).findings.is_empty());
        // …reversed nesting across calls fails, naming the chain.
        let bad = r#"
            fn helper(a: M) { let g = a.lock(); }
            fn f(a: M, b: M) {
                let gb = b.lock();
                helper(a);
            }
        "#;
        let got = run_cross(bad, &c);
        assert_eq!(got.findings.len(), 1, "{:?}", got.findings);
        assert_eq!(got.findings[0].rule, Rule::CrossLocks);
        assert!(got.findings[0].message.contains("via helper"));
    }

    #[test]
    fn cross_function_recursion_and_undeclared_are_flagged() {
        let c = cfg(&["m.lock"], &[("m", "m.lock")]);
        let rec = r#"
            fn helper(m: M) { let g = m.lock(); }
            fn f(m: M) {
                let g = m.lock();
                helper(m);
            }
        "#;
        let got = run_cross(rec, &c);
        assert_eq!(got.findings.len(), 1, "{:?}", got.findings);
        assert!(got.findings[0].message.contains("recursive"));

        let undecl = r#"
            fn helper(mystery: M) { let g = mystery.lock(); }
            fn f(m: M) {
                let g = m.lock();
                helper(m);
            }
        "#;
        let got = run_cross(undecl, &c);
        assert_eq!(got.findings.len(), 1, "{:?}", got.findings);
        assert!(got.findings[0].message.contains("undeclared"));
    }

    #[test]
    fn call_after_guard_release_passes() {
        let c = cfg(&["m.lock"], &[("m", "m.lock")]);
        let src = r#"
            fn helper(m: M) { let g = m.lock(); }
            fn f(m: M) {
                {
                    let g = m.lock();
                }
                helper(m);
            }
        "#;
        assert!(run_cross(src, &c).findings.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let c = cfg(&[], &[]);
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t(a: M, b: M) {
                    let gb = b.lock();
                    let ga = a.lock();
                }
            }
        "#;
        let got = run(src, &c);
        assert!(got.findings.is_empty());
    }
}
