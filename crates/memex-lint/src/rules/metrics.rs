//! Rule family 3: **metric catalog** — `docs/METRICS.md` and the code
//! must agree, in both directions.
//!
//! Usage side: every `counter("…")` / `gauge("…")` / `histogram("…")` /
//! `span("…")` call with a literal name in non-test source is a metric
//! use. Catalog side: every backticked name in a `METRICS.md` table row
//! (`| `store.wal.appends` | counter | … |`) is a catalog entry.
//!
//! - A name used in code but missing from the catalog fails at the call
//!   site: undocumented metrics are write-only telemetry.
//! - A non-wildcard catalog entry never used in code fails at its table
//!   row: stale documentation misleads whoever greps dashboards.
//! - Catalog entries may contain `*` wildcards (`servlet.*.latency`) for
//!   names built with `format!`; wildcards match uses but are exempt
//!   from the unused-entry check, since their use sites have no literal.

use crate::config::Rule;
use crate::lexer::Tok;
use crate::parse::FileModel;
use crate::rules::Finding;

/// Metric-registry constructor methods whose first literal argument is a
/// metric name.
const REGISTRY_METHODS: [&str; 4] = ["counter", "gauge", "histogram", "span"];

/// One literal metric name used in source code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricUse {
    pub name: String,
    pub file: String,
    pub line: usize,
    pub function: String,
}

/// One entry parsed out of the catalog document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    pub name: String,
    pub line: usize,
}

/// Collect literal metric names from one file's non-test code.
pub fn collect_uses(model: &FileModel, file: &str) -> Vec<MetricUse> {
    let mut out = Vec::new();
    for i in 0..model.tokens.len() {
        if model.in_test[i] {
            continue;
        }
        let Tok::Ident(id) = &model.tokens[i].tok else {
            continue;
        };
        if !REGISTRY_METHODS.contains(&id.as_str()) {
            continue;
        }
        // Shape: `.` method `(` "literal" — a method call with a literal
        // first argument. Free functions named `span(…)` etc. in other
        // contexts don't match without the leading dot.
        let dotted = i > 0 && matches!(&model.tokens[i - 1].tok, Tok::Punct('.'));
        if !dotted {
            continue;
        }
        if !matches!(
            model.tokens.get(i + 1).map(|t| &t.tok),
            Some(Tok::Punct('('))
        ) {
            continue;
        }
        if let Some(Tok::Str(name)) = model.tokens.get(i + 2).map(|t| &t.tok) {
            out.push(MetricUse {
                name: name.clone(),
                file: file.to_string(),
                line: model.tokens[i].line,
                function: model.fn_name(i).to_string(),
            });
        }
    }
    out
}

/// Parse catalog entries from the METRICS.md text: backticked names in
/// table rows.
pub fn parse_catalog(text: &str) -> Vec<CatalogEntry> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        // First cell of the row.
        let Some(cell) = trimmed.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        let Some(rest) = cell.strip_prefix('`') else {
            continue;
        };
        let Some(name) = rest.strip_suffix('`') else {
            continue;
        };
        if name.is_empty() {
            continue;
        }
        out.push(CatalogEntry {
            name: name.to_string(),
            line: idx + 1,
        });
    }
    out
}

/// Does `pattern` (with `*` wildcards, each matching one or more
/// characters) match `name`?
fn wildcard_match(pattern: &str, name: &str) -> bool {
    fn inner(p: &[u8], n: &[u8]) -> bool {
        match p.first() {
            None => n.is_empty(),
            Some(b'*') => {
                // `*` must consume at least one character.
                (1..=n.len()).any(|k| inner(&p[1..], &n[k..]))
            }
            Some(&c) => n.first() == Some(&c) && inner(&p[1..], &n[1..]),
        }
    }
    inner(pattern.as_bytes(), name.as_bytes())
}

/// Bidirectional check: uses vs catalog.
pub fn check(catalog_path: &str, entries: &[CatalogEntry], uses: &[MetricUse]) -> Vec<Finding> {
    let mut out = Vec::new();
    for u in uses {
        let documented = entries
            .iter()
            .any(|e| e.name == u.name || wildcard_match(&e.name, &u.name));
        if !documented {
            out.push(Finding {
                rule: Rule::Metrics,
                file: u.file.clone(),
                line: u.line,
                function: u.function.clone(),
                message: format!("metric `{}` is not cataloged in {catalog_path}", u.name),
            });
        }
    }
    for e in entries {
        if e.name.contains('*') {
            continue; // dynamic names have no literal use sites
        }
        if !uses.iter().any(|u| u.name == e.name) {
            out.push(Finding {
                rule: Rule::Metrics,
                file: catalog_path.to_string(),
                line: e.line,
                function: "<catalog>".to_string(),
                message: format!(
                    "cataloged metric `{}` has no literal use in non-test source",
                    e.name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::model;

    const CATALOG: &str = r#"
# Metrics

| name | kind | meaning |
|------|------|---------|
| `net.req.ok` | counter | requests served |
| `servlet.*.latency` | histogram | per-servlet latency |
| `store.ghost` | counter | documented but never emitted |
"#;

    #[test]
    fn catalog_rows_parse() {
        let entries = parse_catalog(CATALOG);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["net.req.ok", "servlet.*.latency", "store.ghost"]
        );
    }

    #[test]
    fn bidirectional_check() {
        let src = r#"
            fn serve(reg: &Registry) {
                reg.counter("net.req.ok").inc();
                reg.counter("net.req.rogue").inc();
            }
        "#;
        let uses = collect_uses(&model(lex(src)), "s.rs");
        let entries = parse_catalog(CATALOG);
        let findings = check("docs/METRICS.md", &entries, &uses);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("net.req.rogue"));
        assert!(findings[1].message.contains("store.ghost"));
    }

    #[test]
    fn wildcard_entries_match_uses_and_skip_unused_check() {
        let src = r#"
            fn observe(reg: &Registry) {
                reg.counter("net.req.ok").inc();
                reg.histogram("servlet.stats.latency").observe(1);
            }
        "#;
        let uses = collect_uses(&model(lex(src)), "s.rs");
        let entries = parse_catalog(CATALOG);
        let findings = check("docs/METRICS.md", &entries, &uses);
        // Only the ghost entry fires; the wildcard neither fires nor
        // demands a literal use.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("store.ghost"));
    }

    #[test]
    fn dynamic_and_test_uses_are_ignored() {
        let src = r#"
            fn observe(reg: &Registry, name: &str) {
                reg.histogram(&format!("servlet.{}.latency", name)).observe(1);
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t(reg: &Registry) { reg.counter("t.only").inc(); }
            }
        "#;
        let uses = collect_uses(&model(lex(src)), "s.rs");
        assert!(uses.is_empty(), "{uses:?}");
    }

    #[test]
    fn wildcard_match_semantics() {
        assert!(wildcard_match("servlet.*.latency", "servlet.stats.latency"));
        assert!(!wildcard_match("servlet.*.latency", "servlet..latency"));
        assert!(!wildcard_match("servlet.*.latency", "servlet.stats.count"));
        assert!(wildcard_match("a.*", "a.b.c"));
        assert!(!wildcard_match("a.*", "a."));
    }
}
