//! Property tests for the inverted index: the index agrees with a naive
//! in-memory model across commits and merges, and boolean search obeys
//! set-algebra laws (De Morgan, idempotence).

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use memex_index::index::{IndexOptions, InvertedIndex};
use memex_index::query::Query;
use memex_index::search::{boolean_search, phrase_search, BoolExpr};
use memex_store::engine::EngineKind;

#[derive(Debug, Clone)]
enum Op {
    Add { doc: u32, terms: Vec<(u32, u32)> },
    Commit,
    Merge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..30, proptest::collection::vec((0u32..12, 1u32..4), 1..6))
            .prop_map(|(doc, terms)| Op::Add { doc, terms }),
        1 => Just(Op::Commit),
        1 => Just(Op::Merge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The index's postings match a reference model regardless of when
    /// commits and merges happen — on both storage engines.
    #[test]
    fn index_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        for engine in [EngineKind::BTree, EngineKind::Lsm] {
            let mut index = InvertedIndex::open_memory(IndexOptions {
                auto_commit_docs: 7,
                engine,
            })
            .unwrap();
            // term -> doc -> max tf (re-adds keep the max, see add_document docs).
            let mut model: BTreeMap<u32, BTreeMap<u32, u32>> = BTreeMap::new();
            let mut seen_docs: BTreeSet<u32> = BTreeSet::new();
            for op in ops.clone() {
                match op {
                    Op::Add { doc, terms } => {
                        // The model mirrors the documented semantics: a re-added
                        // doc id supersedes postings only per-term-max until a
                        // merge; to keep the model simple we skip duplicate ids.
                        if !seen_docs.insert(doc) {
                            continue;
                        }
                        let mut merged: BTreeMap<u32, u32> = BTreeMap::new();
                        for (t, c) in terms {
                            *merged.entry(t).or_insert(0) += c;
                        }
                        let tf: Vec<(u32, u32)> = merged.iter().map(|(&t, &c)| (t, c)).collect();
                        index.add_document(doc, &tf).unwrap();
                        for (t, c) in merged {
                            model.entry(t).or_default().insert(doc, c);
                        }
                    }
                    Op::Commit => index.commit().unwrap(),
                    Op::Merge => index.merge_segments().unwrap(),
                }
            }
            for term in 0u32..12 {
                let got = index.postings(term).unwrap();
                let expected: Vec<(u32, u32)> = model
                    .get(&term)
                    .map(|m| m.iter().map(|(&d, &c)| (d, c)).collect())
                    .unwrap_or_default();
                prop_assert_eq!(got.entries(), expected.as_slice(), "term {} ({:?})", term, engine);
            }
            prop_assert_eq!(index.num_docs(), seen_docs.len() as u64);
        }
    }

    /// Boolean algebra laws over random indexes: De Morgan, idempotence,
    /// absorption.
    #[test]
    fn boolean_laws(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..6, 0..5), 1..20),
    ) {
        let mut index = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
        let mut universe = Vec::new();
        for (d, terms) in docs.iter().enumerate() {
            let d = d as u32;
            universe.push(d);
            let mut tf: Vec<(u32, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            tf.sort_unstable();
            tf.dedup();
            index.add_document(d, &tf).unwrap();
        }
        let a = BoolExpr::Term(1);
        let b = BoolExpr::Term(2);
        let eval = |ix: &InvertedIndex, e: &BoolExpr| boolean_search(ix, e, &universe).unwrap();
        // De Morgan: !(A or B) == !A and !B
        let lhs = eval(&index, &BoolExpr::Not(Box::new(BoolExpr::Or(vec![a.clone(), b.clone()]))));
        let rhs = eval(&index, &BoolExpr::And(vec![
            BoolExpr::Not(Box::new(a.clone())),
            BoolExpr::Not(Box::new(b.clone())),
        ]));
        prop_assert_eq!(lhs, rhs);
        // Idempotence: A and A == A
        let aa = eval(&index, &BoolExpr::And(vec![a.clone(), a.clone()]));
        let just_a = eval(&index, &a);
        prop_assert_eq!(&aa, &just_a);
        // Absorption: A or (A and B) == A
        let absorbed = eval(&index, &BoolExpr::Or(vec![
            a.clone(),
            BoolExpr::And(vec![a.clone(), b.clone()]),
        ]));
        prop_assert_eq!(&absorbed, &just_a);
        // Double negation.
        let nn = eval(&index, &BoolExpr::Not(Box::new(BoolExpr::Not(Box::new(a.clone())))));
        prop_assert_eq!(&nn, &just_a);
        // Complement partitions the universe.
        let not_a = eval(&index, &BoolExpr::Not(Box::new(a)));
        let mut both = just_a.clone();
        both.extend(not_a);
        both.sort_unstable();
        prop_assert_eq!(both, universe);
    }

    /// Phrase search agrees with a brute-force scan over the documents.
    #[test]
    fn phrase_matches_brute_force(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..5, 1..10), 1..15),
        phrase in proptest::collection::vec(0u32..5, 1..4),
    ) {
        let mut index = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
        for (d, terms) in docs.iter().enumerate() {
            index.add_document_positional(d as u32, terms).unwrap();
        }
        let got = phrase_search(&index, &phrase).unwrap();
        let want: Vec<u32> = docs
            .iter()
            .enumerate()
            .filter(|(_, terms)| terms.windows(phrase.len()).any(|w| w == phrase.as_slice()))
            .map(|(d, _)| d as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The query parser never panics and re-parsing its own rendering of
    /// plain ranked terms is stable.
    #[test]
    fn query_parser_total(input in "\\PC{0,80}") {
        let q = Query::parse(&input);
        // Every captured token is non-empty.
        prop_assert!(q.ranked.iter().all(|t| !t.is_empty()));
        prop_assert!(q.must.iter().all(|t| !t.is_empty()));
        prop_assert!(q.must_not.iter().all(|t| !t.is_empty()));
        prop_assert!(q.phrases.iter().all(|p| !p.is_empty()));
    }
}
