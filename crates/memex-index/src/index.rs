//! The segmented inverted index.
//!
//! Documents accumulate in an in-memory buffer; `commit()` seals the buffer
//! into a numbered segment inside the KV store (one key per term per
//! segment). Queries read all segments of a term and merge. `merge_segments`
//! compacts everything into segment 0 — the background-demon maintenance
//! cycle of the paper's Fig. 3.
//!
//! Key layout in the KV store:
//! ```text
//! P<term BE32><seg BE32> -> compressed posting list
//! L<doc BE32>            -> varint doc length (token count)
//! Mseg                   -> next segment number (BE32)
//! ```

use std::collections::HashMap;
use std::path::Path;

use memex_obs::{Counter, Histogram, MetricsRegistry};
use memex_store::codec::{get_uvarint, put_uvarint};
use memex_store::engine::{self, Engine, EngineKind, SnapshotView};
use memex_store::error::StoreResult;
use memex_text::vocab::TermId;

use crate::postings::{PositionalList, PostingList};

/// Index tuning.
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// Auto-commit the buffer after this many documents.
    pub auto_commit_docs: usize,
    /// Which storage engine backs the postings store. The default honours
    /// `MEMEX_ENGINE=btree|lsm`, so a whole deployment flips engines from
    /// the environment without touching per-layer config.
    pub engine: EngineKind,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            auto_commit_docs: 512,
            engine: EngineKind::from_env().unwrap_or_default(),
        }
    }
}

/// Statistics exposed for benches and the server dashboard.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStats {
    pub num_docs: u64,
    pub total_tokens: u64,
    pub segments: u32,
    pub commits: u64,
    pub merges: u64,
}

/// Obs handles (inert until [`InvertedIndex::attach_registry`] is called).
#[derive(Default)]
pub(crate) struct IndexMetrics {
    docs: Counter,
    tokens: Counter,
    commits: Counter,
    merges: Counter,
    /// Posting-list entries sealed into segments (postings growth).
    postings_flushed: Counter,
    commit_latency: Histogram,
    /// Recorded by the search layer (`index.query.latency`).
    pub(crate) query_latency: Histogram,
}

/// A segmented inverted index over term ids.
///
/// Queries ([`InvertedIndex::postings`], [`InvertedIndex::positions`],
/// [`InvertedIndex::df`]) take `&self` and reach the storage engine
/// through the [`Engine`] trait's own `&self` reads — no index-level
/// lock. (The B+Tree engine still serializes its page reads internally;
/// the LSM engine serves them from shared state.)
///
/// For reads that must not contend with ingest at all, take a
/// [`read_snapshot`](InvertedIndex::read_snapshot): it pins the engine's
/// point-in-time view (cheap epoch pin on the LSM engine) plus the
/// in-memory buffer, and every query on it reads the pinned state only.
pub struct InvertedIndex {
    kv: Box<dyn Engine>,
    opts: IndexOptions,
    /// term -> buffered postings (sorted by insertion; docs increase).
    buffer: HashMap<TermId, Vec<(u32, u32)>>,
    /// term -> buffered positional postings (parallel namespace, written
    /// only for documents indexed through [`InvertedIndex::add_document_positional`]).
    pos_buffer: HashMap<TermId, Vec<(u32, Vec<u32>)>>,
    buffered_docs: usize,
    /// doc -> token length (cache of the L records).
    doc_len: HashMap<u32, u32>,
    total_tokens: u64,
    next_seg: u32,
    stats: IndexStats,
    pub(crate) metrics: IndexMetrics,
}

impl InvertedIndex {
    /// In-memory index (still runs the full segment machinery).
    pub fn open_memory(opts: IndexOptions) -> StoreResult<InvertedIndex> {
        Self::build(engine::open_memory(opts.engine)?, opts)
    }

    /// Durable index under `dir` (`index.db` + WAL for the B+Tree engine,
    /// an `index/` run directory for the LSM engine).
    pub fn open_dir<P: AsRef<Path>>(dir: P, opts: IndexOptions) -> StoreResult<InvertedIndex> {
        Self::build(engine::open_dir(opts.engine, dir.as_ref(), "index")?, opts)
    }

    fn build(kv: Box<dyn Engine>, opts: IndexOptions) -> StoreResult<InvertedIndex> {
        // Restore doc lengths and segment counter.
        let mut doc_len = HashMap::new();
        let mut total_tokens = 0u64;
        for (k, v) in kv.scan_prefix(b"L")? {
            if k.len() == 1 + 4 {
                let doc = u32::from_be_bytes(k[1..5].try_into().expect("checked"));
                let mut pos = 0usize;
                let len = get_uvarint(&v, &mut pos)? as u32;
                doc_len.insert(doc, len);
                total_tokens += u64::from(len);
            }
        }
        let next_seg = match kv.get(b"Mseg")? {
            Some(v) if v.len() == 4 => u32::from_be_bytes(v[..4].try_into().expect("checked")),
            _ => 0,
        };
        let num_docs = doc_len.len() as u64;
        Ok(InvertedIndex {
            kv,
            opts,
            buffer: HashMap::new(),
            pos_buffer: HashMap::new(),
            buffered_docs: 0,
            doc_len,
            total_tokens,
            next_seg,
            stats: IndexStats {
                num_docs,
                total_tokens,
                segments: next_seg,
                ..Default::default()
            },
            metrics: IndexMetrics::default(),
        })
    }

    /// Shared read access to the storage engine.
    fn kv(&self) -> &dyn Engine {
        self.kv.as_ref()
    }

    /// Exclusive access for the write path.
    fn kv_mut(&mut self) -> &mut dyn Engine {
        self.kv.as_mut()
    }

    /// Which engine backs this index.
    pub fn engine_kind(&self) -> EngineKind {
        self.opts.engine
    }

    /// The engine epoch a snapshot taken right now would pin. Comparing
    /// this against a held [`IndexSnapshot::epoch`] measures how stale
    /// that snapshot has become (state transitions, not wall time).
    pub fn engine_epoch(&self) -> u64 {
        self.kv.epoch()
    }

    /// Register this index and its backing store with `registry`
    /// (`index.*` plus the `store.*` families of the underlying KvStore).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.kv_mut().attach_registry(registry);
        self.metrics = IndexMetrics {
            docs: registry.counter("index.docs"),
            tokens: registry.counter("index.tokens"),
            commits: registry.counter("index.commits"),
            merges: registry.counter("index.merges"),
            postings_flushed: registry.counter("index.postings_flushed"),
            commit_latency: registry.histogram("index.commit.latency"),
            query_latency: registry.histogram("index.query.latency"),
        };
    }

    /// Index one document. Re-adding a doc id replaces its length record but
    /// old postings are only superseded at merge time (documented
    /// limitation matching segment designs of the era).
    pub fn add_document(&mut self, doc: u32, tf: &[(TermId, u32)]) -> StoreResult<()> {
        let mut len = 0u32;
        for &(t, c) in tf {
            if c == 0 {
                continue;
            }
            self.buffer.entry(t).or_default().push((doc, c));
            len += c;
        }
        let mut lv = Vec::with_capacity(4);
        put_uvarint(&mut lv, u64::from(len));
        self.kv_mut().put(&Self::len_key(doc), &lv)?;
        if self.doc_len.insert(doc, len).is_none() {
            self.stats.num_docs += 1;
        }
        self.metrics.docs.inc();
        self.metrics.tokens.add(u64::from(len));
        self.total_tokens += u64::from(len);
        self.stats.total_tokens = self.total_tokens;
        self.buffered_docs += 1;
        if self.buffered_docs >= self.opts.auto_commit_docs {
            self.commit()?;
        }
        Ok(())
    }

    /// Index a document from its *ordered* (analysed) token sequence,
    /// recording positions so phrase queries work. Also feeds the plain
    /// frequency postings, so ranked search sees the document too.
    pub fn add_document_positional(
        &mut self,
        doc: u32,
        ordered_terms: &[TermId],
    ) -> StoreResult<()> {
        let mut per_term: HashMap<TermId, Vec<u32>> = HashMap::new();
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        for (i, &t) in ordered_terms.iter().enumerate() {
            per_term.entry(t).or_default().push(i as u32);
            *tf.entry(t).or_insert(0) += 1;
        }
        let mut tf: Vec<(TermId, u32)> = tf.into_iter().collect();
        tf.sort_unstable_by_key(|&(t, _)| t);
        for (t, positions) in per_term {
            self.pos_buffer.entry(t).or_default().push((doc, positions));
        }
        self.add_document(doc, &tf)
    }

    /// All positional postings for `term` across buffer and segments.
    pub fn positions(&self, term: TermId) -> StoreResult<PositionalList> {
        let mut merged = PositionalList::new();
        let prefix = Self::pos_prefix(term);
        let rows = self.kv().scan_prefix(&prefix)?;
        for (_k, v) in rows {
            merged = merged.merge(&PositionalList::decode(&v)?);
        }
        if let Some(entries) = self.pos_buffer.get(&term) {
            let mut sorted = entries.clone();
            sorted.sort_by_key(|&(d, _)| d);
            let mut buf = PositionalList::new();
            for (d, p) in sorted {
                // Duplicate doc ids in the buffer: keep the first (push
                // enforces strict order, so skip dups).
                let _ = buf.push(d, p);
            }
            merged = merged.merge(&buf);
        }
        Ok(merged)
    }

    /// Seal the buffer into a new segment.
    pub fn commit(&mut self) -> StoreResult<()> {
        if self.buffer.is_empty() && self.pos_buffer.is_empty() {
            return Ok(());
        }
        let _span = self.metrics.commit_latency.start_span();
        let seg = self.next_seg;
        self.next_seg += 1;
        let next_seg = self.next_seg;
        self.kv_mut().put(b"Mseg", &next_seg.to_be_bytes())?;
        let mut terms: Vec<(TermId, Vec<(u32, u32)>)> = self.buffer.drain().collect();
        terms.sort_unstable_by_key(|&(t, _)| t);
        for (term, pairs) in terms {
            self.metrics.postings_flushed.add(pairs.len() as u64);
            let list = PostingList::from_pairs(pairs);
            let encoded = list.encode()?;
            self.kv_mut()
                .put(&Self::postings_key(term, seg), &encoded)?;
        }
        type PosTerm = (TermId, Vec<(u32, Vec<u32>)>);
        let mut pos_terms: Vec<PosTerm> = self.pos_buffer.drain().collect();
        pos_terms.sort_unstable_by_key(|&(t, _)| t);
        for (term, mut entries) in pos_terms {
            entries.sort_by_key(|&(d, _)| d);
            entries.dedup_by_key(|&mut (d, _)| d); // duplicate doc ids: keep first
            self.write_positional_chunks(term, seg, &entries)?;
        }
        self.buffered_docs = 0;
        self.metrics.commits.inc();
        self.stats.commits += 1;
        self.stats.segments = self.next_seg;
        Ok(())
    }

    /// All postings for `term` across buffer and segments, merged.
    pub fn postings(&self, term: TermId) -> StoreResult<PostingList> {
        let mut merged = PostingList::new();
        let prefix = Self::term_prefix(term);
        let rows = self.kv().scan_prefix(&prefix)?;
        for (_k, v) in rows {
            merged = merged.merge(&PostingList::decode(&v)?);
        }
        if let Some(pairs) = self.buffer.get(&term) {
            merged = merged.merge(&PostingList::from_pairs(pairs.clone()));
        }
        Ok(merged)
    }

    /// Document frequency of a term (docs containing it).
    pub fn df(&self, term: TermId) -> StoreResult<u32> {
        Ok(self.postings(term)?.len() as u32)
    }

    /// Compact all segments (plus the buffer) into segment 0.
    pub fn merge_segments(&mut self) -> StoreResult<()> {
        self.commit()?;
        // Positional namespace first (same per-term merge policy).
        {
            let all = self.kv_mut().scan_prefix(b"Q")?;
            let mut per_term: HashMap<TermId, PositionalList> = HashMap::new();
            let mut old_keys = Vec::with_capacity(all.len());
            for (k, v) in all {
                if k.len() != 1 + 4 + 4 + 2 {
                    continue;
                }
                let term = u32::from_be_bytes(k[1..5].try_into().expect("checked"));
                let list = PositionalList::decode(&v)?;
                per_term
                    .entry(term)
                    .and_modify(|acc| *acc = acc.merge(&list))
                    .or_insert(list);
                old_keys.push(k);
            }
            for k in old_keys {
                self.kv_mut().delete(&k)?;
            }
            let mut terms: Vec<(TermId, PositionalList)> = per_term.into_iter().collect();
            terms.sort_unstable_by_key(|&(t, _)| t);
            for (term, list) in terms {
                let entries: Vec<(u32, Vec<u32>)> = list.entries().to_vec();
                self.write_positional_chunks(term, 0, &entries)?;
            }
        }
        // Gather per-term merged lists.
        let all = self.kv_mut().scan_prefix(b"P")?;
        let mut per_term: HashMap<TermId, PostingList> = HashMap::new();
        let mut old_keys = Vec::with_capacity(all.len());
        for (k, v) in all {
            if k.len() != 1 + 4 + 4 {
                continue;
            }
            let term = u32::from_be_bytes(k[1..5].try_into().expect("checked"));
            let list = PostingList::decode(&v)?;
            per_term
                .entry(term)
                .and_modify(|acc| *acc = acc.merge(&list))
                .or_insert(list);
            old_keys.push(k);
        }
        for k in old_keys {
            self.kv_mut().delete(&k)?;
        }
        let mut terms: Vec<(TermId, PostingList)> = per_term.into_iter().collect();
        terms.sort_unstable_by_key(|&(t, _)| t);
        for (term, list) in terms {
            let encoded = list.encode()?;
            self.kv_mut().put(&Self::postings_key(term, 0), &encoded)?;
        }
        self.next_seg = 1;
        self.kv_mut().put(b"Mseg", &1u32.to_be_bytes())?;
        self.metrics.merges.inc();
        self.stats.merges += 1;
        self.stats.segments = 1;
        Ok(())
    }

    /// Flush everything durable.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        self.commit()?;
        self.kv_mut().checkpoint()
    }

    /// Pin a point-in-time read view: an engine snapshot (a cheap run-set
    /// epoch pin on the LSM engine, a materialized copy on the B+Tree
    /// engine) plus the in-memory buffers as of now. Queries on the
    /// returned [`IndexSnapshot`] never touch the store lock again, so
    /// mining demons read a stable view while ingest — and LSM
    /// compaction — continue underneath.
    pub fn read_snapshot(&self) -> StoreResult<IndexSnapshot> {
        let view = self.kv().snapshot()?;
        Ok(IndexSnapshot {
            view,
            buffer: self.buffer.clone(),
            pos_buffer: self.pos_buffer.clone(),
            doc_len: self.doc_len.clone(),
            num_docs: self.stats.num_docs,
            total_tokens: self.total_tokens,
        })
    }

    pub fn num_docs(&self) -> u64 {
        self.stats.num_docs
    }

    /// Mean document length (tokens).
    pub fn avg_doc_len(&self) -> f64 {
        if self.stats.num_docs == 0 {
            0.0
        } else {
            self.total_tokens as f64 / self.stats.num_docs as f64
        }
    }

    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_len.get(&doc).copied().unwrap_or(0)
    }

    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    fn postings_key(term: TermId, seg: u32) -> Vec<u8> {
        let mut k = Vec::with_capacity(9);
        k.push(b'P');
        k.extend_from_slice(&term.to_be_bytes());
        k.extend_from_slice(&seg.to_be_bytes());
        k
    }

    fn term_prefix(term: TermId) -> Vec<u8> {
        let mut k = Vec::with_capacity(5);
        k.push(b'P');
        k.extend_from_slice(&term.to_be_bytes());
        k
    }

    /// Positional keys carry a chunk index: frequent terms accumulate more
    /// position bytes per segment than one KV value may hold, so a
    /// segment's list is split across `Q<term><seg><chunk>` keys (the
    /// prefix scan in [`InvertedIndex::positions`] reassembles them).
    fn pos_key(term: TermId, seg: u32, chunk: u16) -> Vec<u8> {
        let mut k = Vec::with_capacity(11);
        k.push(b'Q');
        k.extend_from_slice(&term.to_be_bytes());
        k.extend_from_slice(&seg.to_be_bytes());
        k.extend_from_slice(&chunk.to_be_bytes());
        k
    }

    fn pos_prefix(term: TermId) -> Vec<u8> {
        let mut k = Vec::with_capacity(5);
        k.push(b'Q');
        k.extend_from_slice(&term.to_be_bytes());
        k
    }

    /// Write one segment's positional entries for `term`, split into
    /// chunks that each encode comfortably below the KV value cap. A
    /// single document's position list must fit on its own (guaranteed for
    /// realistic page lengths; violations surface as a store error).
    fn write_positional_chunks(
        &mut self,
        term: TermId,
        seg: u32,
        entries: &[(u32, Vec<u32>)],
    ) -> StoreResult<()> {
        const CHUNK_BUDGET: usize = 1_400; // encoded bytes per chunk, with headroom
        let mut chunk_idx: u16 = 0;
        let mut list = PositionalList::new();
        let mut approx = 0usize;
        for (d, p) in entries {
            let entry_cost = 8 + p.len() * 3;
            if approx > 0 && approx + entry_cost > CHUNK_BUDGET {
                let encoded = list.encode()?;
                self.kv_mut()
                    .put(&Self::pos_key(term, seg, chunk_idx), &encoded)?;
                chunk_idx += 1;
                list = PositionalList::new();
                approx = 0;
            }
            list.push(*d, p.clone())?;
            approx += entry_cost;
        }
        if !list.is_empty() {
            let encoded = list.encode()?;
            self.kv_mut()
                .put(&Self::pos_key(term, seg, chunk_idx), &encoded)?;
        }
        Ok(())
    }

    fn len_key(doc: u32) -> Vec<u8> {
        let mut k = Vec::with_capacity(5);
        k.push(b'L');
        k.extend_from_slice(&doc.to_be_bytes());
        k
    }
}

/// A pinned point-in-time view of the index: segments come from an engine
/// [`SnapshotView`], buffered (uncommitted) postings from a clone taken at
/// snapshot time. Every query here is lock-free — ingest proceeding on the
/// live [`InvertedIndex`] is invisible to this view.
pub struct IndexSnapshot {
    view: Box<dyn SnapshotView>,
    buffer: HashMap<TermId, Vec<(u32, u32)>>,
    pos_buffer: HashMap<TermId, Vec<(u32, Vec<u32>)>>,
    doc_len: HashMap<u32, u32>,
    num_docs: u64,
    total_tokens: u64,
}

impl IndexSnapshot {
    /// The engine epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// All postings for `term` as of snapshot time.
    pub fn postings(&self, term: TermId) -> StoreResult<PostingList> {
        let mut merged = PostingList::new();
        for (_k, v) in self.view.scan_prefix(&InvertedIndex::term_prefix(term)) {
            merged = merged.merge(&PostingList::decode(&v)?);
        }
        if let Some(pairs) = self.buffer.get(&term) {
            merged = merged.merge(&PostingList::from_pairs(pairs.clone()));
        }
        Ok(merged)
    }

    /// All positional postings for `term` as of snapshot time.
    pub fn positions(&self, term: TermId) -> StoreResult<PositionalList> {
        let mut merged = PositionalList::new();
        for (_k, v) in self.view.scan_prefix(&InvertedIndex::pos_prefix(term)) {
            merged = merged.merge(&PositionalList::decode(&v)?);
        }
        if let Some(entries) = self.pos_buffer.get(&term) {
            let mut sorted = entries.clone();
            sorted.sort_by_key(|&(d, _)| d);
            let mut buf = PositionalList::new();
            for (d, p) in sorted {
                let _ = buf.push(d, p); // duplicate doc ids: keep first
            }
            merged = merged.merge(&buf);
        }
        Ok(merged)
    }

    /// Document frequency of a term as of snapshot time.
    pub fn df(&self, term: TermId) -> StoreResult<u32> {
        Ok(self.postings(term)?.len() as u32)
    }

    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Mean document length (tokens) as of snapshot time.
    pub fn avg_doc_len(&self) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.total_tokens as f64 / self.num_docs as f64
        }
    }

    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_len.get(&doc).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> InvertedIndex {
        InvertedIndex::open_memory(IndexOptions {
            auto_commit_docs: 4,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn postings_visible_before_and_after_commit() {
        let mut ix = idx();
        ix.add_document(10, &[(1, 3), (2, 1)]).unwrap();
        assert_eq!(
            ix.postings(1).unwrap().entries(),
            &[(10, 3)],
            "buffered postings visible"
        );
        ix.commit().unwrap();
        assert_eq!(ix.postings(1).unwrap().entries(), &[(10, 3)]);
        ix.add_document(11, &[(1, 2)]).unwrap();
        assert_eq!(ix.postings(1).unwrap().entries(), &[(10, 3), (11, 2)]);
    }

    #[test]
    fn auto_commit_triggers_and_segments_accumulate() {
        let mut ix = idx();
        for d in 0..9u32 {
            ix.add_document(d, &[(7, 1)]).unwrap();
        }
        assert!(ix.stats().commits >= 2);
        assert_eq!(ix.postings(7).unwrap().len(), 9);
    }

    #[test]
    fn merge_compacts_to_one_segment() {
        let mut ix = idx();
        for d in 0..20u32 {
            ix.add_document(d, &[(1, 1), (2 + d % 3, 1)]).unwrap();
        }
        ix.merge_segments().unwrap();
        assert_eq!(ix.stats().segments, 1);
        assert_eq!(ix.postings(1).unwrap().len(), 20);
        assert_eq!(ix.df(2).unwrap(), 7);
        // Still writable after a merge.
        ix.add_document(100, &[(1, 5)]).unwrap();
        assert_eq!(ix.postings(1).unwrap().len(), 21);
    }

    #[test]
    fn doc_lengths_and_averages() {
        let mut ix = idx();
        ix.add_document(1, &[(1, 3), (2, 2)]).unwrap();
        ix.add_document(2, &[(1, 5)]).unwrap();
        assert_eq!(ix.doc_len(1), 5);
        assert_eq!(ix.doc_len(2), 5);
        assert_eq!(ix.num_docs(), 2);
        assert!((ix.avg_doc_len() - 5.0).abs() < 1e-9);
        assert_eq!(ix.doc_len(99), 0);
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("memex-index-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut ix = InvertedIndex::open_dir(&dir, IndexOptions::default()).unwrap();
            ix.add_document(5, &[(42, 2)]).unwrap();
            ix.checkpoint().unwrap();
        }
        {
            let mut ix = InvertedIndex::open_dir(&dir, IndexOptions::default()).unwrap();
            assert_eq!(ix.num_docs(), 1);
            assert_eq!(ix.postings(42).unwrap().entries(), &[(5, 2)]);
            // Segment counter restored: new commits do not collide.
            ix.add_document(6, &[(42, 1)]).unwrap();
            ix.commit().unwrap();
            assert_eq!(ix.postings(42).unwrap().len(), 2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn common_terms_chunk_across_kv_values() {
        // Regression: a term occurring many times in many documents of one
        // segment must not blow the KV value cap — its positional list is
        // chunked across keys and reassembled on read.
        let mut ix = InvertedIndex::open_memory(IndexOptions {
            auto_commit_docs: 4096,
            ..Default::default()
        })
        .unwrap();
        let common = 7u32;
        for d in 0..400u32 {
            // 20 occurrences per document.
            let seq: Vec<u32> = (0..20)
                .map(|i| if i % 2 == 0 { common } else { 1000 + d })
                .collect();
            ix.add_document_positional(d, &seq).unwrap();
        }
        ix.commit().unwrap();
        let list = ix.positions(common).unwrap();
        assert_eq!(list.len(), 400);
        assert_eq!(list.positions(123), &[0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
        ix.merge_segments().unwrap();
        let list = ix.positions(common).unwrap();
        assert_eq!(list.len(), 400);
        assert_eq!(ix.postings(common).unwrap().len(), 400);
    }

    #[test]
    fn snapshot_pins_postings_while_ingest_continues() {
        for engine in [EngineKind::BTree, EngineKind::Lsm] {
            let mut ix = InvertedIndex::open_memory(IndexOptions {
                auto_commit_docs: 2,
                engine,
            })
            .unwrap();
            assert_eq!(ix.engine_kind(), engine);
            for d in 0..5u32 {
                ix.add_document(d, &[(7, 1)]).unwrap();
            }
            let snap = ix.read_snapshot().unwrap();
            for d in 5..40u32 {
                ix.add_document(d, &[(7, 2)]).unwrap();
            }
            ix.merge_segments().unwrap();
            // The live index sees everything; the snapshot sees exactly
            // the pre-burst state — committed segments and the buffer.
            assert_eq!(ix.postings(7).unwrap().len(), 40, "{engine:?}");
            assert_eq!(snap.postings(7).unwrap().len(), 5, "{engine:?}");
            assert_eq!(snap.num_docs(), 5);
            assert_eq!(snap.doc_len(3), 1);
            assert_eq!(snap.df(7).unwrap(), 5);
            assert_eq!(snap.df(999).unwrap(), 0);
        }
    }

    #[test]
    fn unknown_term_is_empty() {
        let ix = idx();
        assert!(ix.postings(999).unwrap().is_empty());
        assert_eq!(ix.df(999).unwrap(), 0);
    }
}
