//! Ranked (BM25) and boolean retrieval over the inverted index.

use std::collections::HashMap;

use memex_store::error::StoreResult;
use memex_text::vocab::TermId;

use crate::index::InvertedIndex;
use crate::postings::{difference, intersect, union};

/// One ranked result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    pub doc: u32,
    pub score: f32,
}

/// BM25 parameters (classic defaults).
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    pub k1: f32,
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Ranked top-`k` retrieval for a bag-of-terms query.
pub fn bm25_search(
    index: &InvertedIndex,
    query_terms: &[(TermId, u32)],
    k: usize,
    params: Bm25Params,
) -> StoreResult<Vec<SearchHit>> {
    let _span = index.metrics.query_latency.start_span();
    let _trace = memex_obs::trace::span("index.bm25");
    let n = index.num_docs() as f32;
    if n == 0.0 || query_terms.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let avg_len = index.avg_doc_len() as f32;
    let mut scores: HashMap<u32, f32> = HashMap::new();
    for &(term, qtf) in query_terms {
        let postings = index.postings(term)?;
        let df = postings.len() as f32;
        if df == 0.0 {
            continue;
        }
        // BM25 idf with the usual +1 to keep it positive.
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        for &(doc, tf) in postings.entries() {
            let dl = index.doc_len(doc) as f32;
            let tf = tf as f32;
            let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avg_len.max(1.0));
            let contribution = idf * tf * (params.k1 + 1.0) / denom;
            *scores.entry(doc).or_insert(0.0) += contribution * qtf as f32;
        }
    }
    let mut hits: Vec<SearchHit> = scores
        .into_iter()
        .map(|(doc, score)| SearchHit { doc, score })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
    hits.truncate(k);
    Ok(hits)
}

/// Exact phrase search over positional postings: documents containing the
/// terms at strictly consecutive positions (in the analysed token stream —
/// stopwords removed, stems applied — so "compiler optimization" matches
/// "compilers optimize"). Returns sorted doc ids. A single-term phrase
/// degenerates to that term's document list; an empty phrase matches
/// nothing. Only documents indexed via
/// [`InvertedIndex::add_document_positional`] can match.
pub fn phrase_search(index: &InvertedIndex, phrase: &[TermId]) -> StoreResult<Vec<u32>> {
    let _span = index.metrics.query_latency.start_span();
    let _trace = memex_obs::trace::span("index.phrase");
    let Some((&first, rest)) = phrase.split_first() else {
        return Ok(Vec::new());
    };
    let first_list = index.positions(first)?;
    if rest.is_empty() {
        return Ok(first_list.entries().iter().map(|&(d, _)| d).collect());
    }
    let rest_lists: Vec<_> = rest
        .iter()
        .map(|&t| index.positions(t))
        .collect::<StoreResult<Vec<_>>>()?;
    let mut out = Vec::new();
    'docs: for (doc, first_positions) in first_list.entries() {
        // Candidate start positions; prune against each following term.
        let mut starts: Vec<u32> = first_positions.clone();
        for (offset, list) in rest_lists.iter().enumerate() {
            let needed = offset as u32 + 1;
            let positions = list.positions(*doc);
            if positions.is_empty() {
                continue 'docs;
            }
            starts.retain(|&s| positions.binary_search(&(s + needed)).is_ok());
            if starts.is_empty() {
                continue 'docs;
            }
        }
        out.push(*doc);
    }
    Ok(out)
}

/// Boolean query tree. `Not` is interpreted as "all indexed docs minus X"
/// using the given universe, so it composes anywhere.
#[derive(Debug, Clone)]
pub enum BoolExpr {
    Term(TermId),
    And(Vec<BoolExpr>),
    Or(Vec<BoolExpr>),
    Not(Box<BoolExpr>),
}

/// Evaluate a boolean expression to a sorted doc-id set. `universe` must be
/// sorted (use all doc ids for full NOT semantics).
pub fn boolean_search(
    index: &InvertedIndex,
    expr: &BoolExpr,
    universe: &[u32],
) -> StoreResult<Vec<u32>> {
    let _trace = memex_obs::trace::span("index.boolean");
    Ok(match expr {
        BoolExpr::Term(t) => index.postings(*t)?.docs(),
        BoolExpr::And(parts) => {
            let mut acc: Option<Vec<u32>> = None;
            for p in parts {
                let s = boolean_search(index, p, universe)?;
                acc = Some(match acc {
                    None => s,
                    Some(a) => intersect(&a, &s),
                });
                if acc.as_ref().is_some_and(Vec::is_empty) {
                    break;
                }
            }
            acc.unwrap_or_default()
        }
        BoolExpr::Or(parts) => {
            let mut acc = Vec::new();
            for p in parts {
                acc = union(&acc, &boolean_search(index, p, universe)?);
            }
            acc
        }
        BoolExpr::Not(inner) => difference(universe, &boolean_search(index, inner, universe)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexOptions, InvertedIndex};

    /// Docs: 1 = "music music bach", 2 = "music cycling", 3 = "cycling
    /// cycling gear", 4 = long doc mentioning music once.
    fn corpus() -> InvertedIndex {
        let mut ix = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
        const MUSIC: u32 = 1;
        const BACH: u32 = 2;
        const CYCLING: u32 = 3;
        const GEAR: u32 = 4;
        const FILLER: u32 = 5;
        ix.add_document(1, &[(MUSIC, 2), (BACH, 1)]).unwrap();
        ix.add_document(2, &[(MUSIC, 1), (CYCLING, 1)]).unwrap();
        ix.add_document(3, &[(CYCLING, 2), (GEAR, 1)]).unwrap();
        ix.add_document(4, &[(MUSIC, 1), (FILLER, 50)]).unwrap();
        ix
    }

    #[test]
    fn bm25_ranks_frequency_and_length() {
        let ix = corpus();
        let hits = bm25_search(&ix, &[(1, 1)], 10, Bm25Params::default()).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].doc, 1, "doc with tf=2 ranks first");
        // The long doc (4) is penalised below the short doc (2).
        let pos2 = hits.iter().position(|h| h.doc == 2).unwrap();
        let pos4 = hits.iter().position(|h| h.doc == 4).unwrap();
        assert!(pos2 < pos4, "length normalisation must demote doc 4");
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn multi_term_queries_prefer_docs_matching_both() {
        let ix = corpus();
        let hits = bm25_search(&ix, &[(1, 1), (3, 1)], 10, Bm25Params::default()).unwrap();
        assert_eq!(hits[0].doc, 2, "only doc 2 has music AND cycling");
    }

    #[test]
    fn rare_terms_weigh_more() {
        let ix = corpus();
        // bach (df=1) should outscore music (df=3) for the same doc/tf.
        let b = bm25_search(&ix, &[(2, 1)], 1, Bm25Params::default()).unwrap();
        let m = bm25_search(&ix, &[(1, 1)], 3, Bm25Params::default()).unwrap();
        let music_score_doc1 = m.iter().find(|h| h.doc == 1).unwrap().score;
        assert!(b[0].score > music_score_doc1 / 2.0);
        assert_eq!(b[0].doc, 1);
    }

    #[test]
    fn top_k_truncates() {
        let ix = corpus();
        let hits = bm25_search(&ix, &[(1, 1)], 2, Bm25Params::default()).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(bm25_search(&ix, &[(1, 1)], 0, Bm25Params::default())
            .unwrap()
            .is_empty());
        assert!(bm25_search(&ix, &[], 5, Bm25Params::default())
            .unwrap()
            .is_empty());
        assert!(bm25_search(&ix, &[(99, 1)], 5, Bm25Params::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn boolean_combinators() {
        let ix = corpus();
        let universe = vec![1, 2, 3, 4];
        let and = BoolExpr::And(vec![BoolExpr::Term(1), BoolExpr::Term(3)]);
        assert_eq!(boolean_search(&ix, &and, &universe).unwrap(), vec![2]);
        let or = BoolExpr::Or(vec![BoolExpr::Term(2), BoolExpr::Term(4)]);
        assert_eq!(boolean_search(&ix, &or, &universe).unwrap(), vec![1, 3]);
        let and_not = BoolExpr::And(vec![
            BoolExpr::Term(1),
            BoolExpr::Not(Box::new(BoolExpr::Term(3))),
        ]);
        assert_eq!(
            boolean_search(&ix, &and_not, &universe).unwrap(),
            vec![1, 4]
        );
        let nothing = BoolExpr::And(vec![BoolExpr::Term(2), BoolExpr::Term(4)]);
        assert!(boolean_search(&ix, &nothing, &universe).unwrap().is_empty());
    }

    #[test]
    fn phrase_search_requires_adjacency() {
        let mut ix = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
        // Doc 1: "music bach organ"; doc 2: "music organ bach"; doc 3:
        // "bach music" (reverse); term ids: music=1, bach=2, organ=3.
        ix.add_document_positional(1, &[1, 2, 3]).unwrap();
        ix.add_document_positional(2, &[1, 3, 2]).unwrap();
        ix.add_document_positional(3, &[2, 1]).unwrap();
        assert_eq!(phrase_search(&ix, &[1, 2]).unwrap(), vec![1], "music bach");
        assert_eq!(phrase_search(&ix, &[2, 1]).unwrap(), vec![3], "bach music");
        assert_eq!(phrase_search(&ix, &[1, 2, 3]).unwrap(), vec![1]);
        assert_eq!(phrase_search(&ix, &[1]).unwrap(), vec![1, 2, 3]);
        assert!(phrase_search(&ix, &[]).unwrap().is_empty());
        assert!(phrase_search(&ix, &[3, 1]).unwrap().is_empty());
        // Ranked search still sees positionally-indexed docs.
        let hits = bm25_search(&ix, &[(1, 1)], 10, Bm25Params::default()).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn phrase_search_survives_commit_and_merge() {
        let mut ix = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
        ix.add_document_positional(1, &[7, 8]).unwrap();
        ix.commit().unwrap();
        ix.add_document_positional(2, &[7, 8]).unwrap();
        ix.add_document_positional(3, &[8, 7]).unwrap();
        assert_eq!(phrase_search(&ix, &[7, 8]).unwrap(), vec![1, 2]);
        ix.merge_segments().unwrap();
        assert_eq!(phrase_search(&ix, &[7, 8]).unwrap(), vec![1, 2]);
        // Still writable afterwards.
        ix.add_document_positional(4, &[7, 8]).unwrap();
        assert_eq!(phrase_search(&ix, &[7, 8]).unwrap(), vec![1, 2, 4]);
    }

    #[test]
    fn empty_index_is_graceful() {
        let ix = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
        assert!(bm25_search(&ix, &[(1, 1)], 5, Bm25Params::default())
            .unwrap()
            .is_empty());
        assert!(boolean_search(&ix, &BoolExpr::Term(1), &[])
            .unwrap()
            .is_empty());
    }
}
