//! The search-box query language of the era: loose terms are ranked
//! (BM25), `+term` must appear, `-term` must not, and `"quoted words"`
//! must appear as an exact phrase.
//!
//! ```text
//! classical +bach -jazz "organ fugue"
//! ```
//!
//! Parsing works on raw text; term resolution happens against a
//! [`Vocabulary`] through the same analyzer the corpus was indexed with,
//! so stemming and stopwords behave identically on both sides.

use memex_store::error::StoreResult;
use memex_text::analyze::Analyzer;
use memex_text::vocab::{TermId, Vocabulary};

use crate::index::InvertedIndex;
use crate::postings::{difference, intersect};
use crate::search::{bm25_search, phrase_search, Bm25Params, SearchHit};

/// A parsed query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    /// Terms contributing to the BM25 score (includes `+` terms).
    pub ranked: Vec<String>,
    /// Terms that must be present (`+term`).
    pub must: Vec<String>,
    /// Terms that must be absent (`-term`).
    pub must_not: Vec<String>,
    /// Exact phrases (`"..."`), each a list of words.
    pub phrases: Vec<Vec<String>>,
}

impl Query {
    /// Parse the raw query text. Unterminated quotes swallow the rest of
    /// the line (browser search boxes did the same).
    pub fn parse(input: &str) -> Query {
        let mut q = Query::default();
        let mut rest = input.trim();
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            if let Some(after) = rest.strip_prefix('"') {
                let (phrase, tail) = match after.find('"') {
                    Some(end) => (&after[..end], &after[end + 1..]),
                    None => (after, ""),
                };
                let words: Vec<String> = phrase.split_whitespace().map(str::to_string).collect();
                if !words.is_empty() {
                    q.phrases.push(words);
                }
                rest = tail;
                continue;
            }
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let token = &rest[..end];
            rest = &rest[end..];
            if let Some(t) = token.strip_prefix('+') {
                if !t.is_empty() {
                    q.must.push(t.to_string());
                    q.ranked.push(t.to_string());
                }
            } else if let Some(t) = token.strip_prefix('-') {
                if !t.is_empty() {
                    q.must_not.push(t.to_string());
                }
            } else {
                q.ranked.push(token.to_string());
            }
        }
        q
    }

    /// True when the query has no usable content.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty() && self.must.is_empty() && self.phrases.is_empty()
    }
}

/// Execute a parsed query: BM25 over the ranked terms, filtered by the
/// `+`/`-`/phrase constraints. Phrase-only queries rank by phrase presence
/// (score 1.0). Terms unknown to the vocabulary make `+`/phrase
/// constraints unsatisfiable (correct: the corpus cannot contain them).
pub fn execute(
    index: &InvertedIndex,
    vocab: &Vocabulary,
    analyzer: &Analyzer,
    query: &Query,
    k: usize,
) -> StoreResult<Vec<SearchHit>> {
    // Resolve text -> term ids through the analyzer (stem + stop).
    let resolve = |word: &str| -> Vec<TermId> {
        analyzer
            .term_sequence(word)
            .iter()
            .filter_map(|t| vocab.id(t))
            .collect()
    };
    // Hard filters.
    let mut allowed: Option<Vec<u32>> = None;
    let constrain = |docs: Vec<u32>, allowed: &mut Option<Vec<u32>>| {
        *allowed = Some(match allowed.take() {
            None => docs,
            Some(prev) => intersect(&prev, &docs),
        });
    };
    for phrase in &query.phrases {
        let mut ids = Vec::new();
        for w in phrase {
            ids.extend(resolve(w));
        }
        // A phrase whose words all analysed away (stopwords) is vacuous.
        if ids.is_empty() {
            continue;
        }
        constrain(phrase_search(index, &ids)?, &mut allowed);
    }
    for term in &query.must {
        let ids = resolve(term);
        if ids.is_empty() {
            constrain(Vec::new(), &mut allowed); // unknown term: nothing matches
            continue;
        }
        let mut docs: Option<Vec<u32>> = None;
        for id in ids {
            let d = index.postings(id)?.docs();
            docs = Some(match docs.take() {
                None => d,
                Some(prev) => intersect(&prev, &d),
            });
        }
        constrain(docs.unwrap_or_default(), &mut allowed);
    }
    let mut excluded: Vec<u32> = Vec::new();
    for term in &query.must_not {
        for id in resolve(term) {
            excluded = crate::postings::union(&excluded, &index.postings(id)?.docs());
        }
    }
    // Ranked retrieval.
    let ranked_ids: Vec<(TermId, u32)> = query
        .ranked
        .iter()
        .flat_map(|w| resolve(w))
        .map(|id| (id, 1))
        .collect();
    let mut hits: Vec<SearchHit> = if ranked_ids.is_empty() {
        // Phrase/+-only query: every allowed doc scores 1.0.
        allowed
            .clone()
            .unwrap_or_default()
            .into_iter()
            .map(|doc| SearchHit { doc, score: 1.0 })
            .collect()
    } else {
        bm25_search(index, &ranked_ids, k * 20 + 50, Bm25Params::default())?
    };
    if let Some(allowed) = &allowed {
        hits.retain(|h| allowed.binary_search(&h.doc).is_ok());
    }
    if !excluded.is_empty() {
        let keep: Vec<u32> = {
            let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
            let mut sorted = docs.clone();
            sorted.sort_unstable();
            difference(&sorted, &excluded)
        };
        hits.retain(|h| keep.binary_search(&h.doc).is_ok());
    }
    hits.truncate(k);
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;

    #[test]
    fn parser_splits_operators() {
        let q = Query::parse(r#"classical +bach -jazz "organ fugue" music"#);
        assert_eq!(q.ranked, vec!["classical", "bach", "music"]);
        assert_eq!(q.must, vec!["bach"]);
        assert_eq!(q.must_not, vec!["jazz"]);
        assert_eq!(
            q.phrases,
            vec![vec!["organ".to_string(), "fugue".to_string()]]
        );
    }

    #[test]
    fn parser_edge_cases() {
        assert!(Query::parse("").is_empty());
        assert!(Query::parse("   ").is_empty());
        let q = Query::parse(r#""unterminated phrase"#);
        assert_eq!(
            q.phrases,
            vec![vec!["unterminated".to_string(), "phrase".to_string()]]
        );
        let q = Query::parse("+ - \"\"");
        assert!(q.is_empty(), "bare operators are ignored: {q:?}");
        let q = Query::parse("-only -negative");
        assert!(q.ranked.is_empty());
        assert_eq!(q.must_not.len(), 2);
    }

    /// Index four tiny docs through the real analyzer and vocabulary.
    fn setup() -> (InvertedIndex, Vocabulary, Analyzer) {
        let analyzer = Analyzer::default();
        let mut vocab = Vocabulary::new();
        let mut index = InvertedIndex::open_memory(IndexOptions::default()).unwrap();
        let docs = [
            (1u32, "bach organ fugue in classical style"),
            (2u32, "bach jazz crossover recordings"),
            (3u32, "organ fugue without the master"),
            (4u32, "classical guitar music"),
        ];
        for (id, text) in docs {
            analyzer.index_document(&mut vocab, text);
            let seq = analyzer.intern_sequence(&mut vocab, text);
            index.add_document_positional(id, &seq).unwrap();
        }
        (index, vocab, analyzer)
    }

    #[test]
    fn must_and_not_filters() {
        let (index, vocab, analyzer) = setup();
        let q = Query::parse("+bach -jazz");
        let hits = execute(&index, &vocab, &analyzer, &q, 10).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1);
    }

    #[test]
    fn phrase_constraint_applies() {
        let (index, vocab, analyzer) = setup();
        let q = Query::parse(r#""organ fugue""#);
        let docs: Vec<u32> = execute(&index, &vocab, &analyzer, &q, 10)
            .unwrap()
            .iter()
            .map(|h| h.doc)
            .collect();
        assert_eq!(docs, vec![1, 3]);
        // Phrase + exclusion.
        let q = Query::parse(r#""organ fugue" -classical"#);
        let docs: Vec<u32> = execute(&index, &vocab, &analyzer, &q, 10)
            .unwrap()
            .iter()
            .map(|h| h.doc)
            .collect();
        assert_eq!(docs, vec![3]);
    }

    #[test]
    fn ranked_terms_still_rank() {
        let (index, vocab, analyzer) = setup();
        let q = Query::parse("classical bach");
        let hits = execute(&index, &vocab, &analyzer, &q, 10).unwrap();
        assert_eq!(hits[0].doc, 1, "doc with both terms first");
        assert!(hits.len() >= 3);
    }

    #[test]
    fn unknown_must_term_matches_nothing() {
        let (index, vocab, analyzer) = setup();
        let q = Query::parse("+zeppelin bach");
        assert!(execute(&index, &vocab, &analyzer, &q, 10)
            .unwrap()
            .is_empty());
        // But an unknown *ranked* term degrades gracefully.
        let q = Query::parse("zeppelin bach");
        assert!(!execute(&index, &vocab, &analyzer, &q, 10)
            .unwrap()
            .is_empty());
    }
}
