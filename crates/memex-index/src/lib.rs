//! # memex-index — full-text indexing over the lightweight store
//!
//! "Apart from a standard full-text search over all pages visited…" (§2) —
//! this crate is that search. Term-level postings live in the
//! Berkeley-DB-style [`memex_store::KvStore`] (the paper's architectural
//! point: term-granularity data would overwhelm the RDBMS), written in
//! segments by the background indexer demon and merged lazily:
//!
//! * [`postings`] — delta+varint compressed posting lists;
//! * [`index`] — the segmented inverted index (buffer → commit → merge);
//! * [`search`] — BM25 ranked retrieval and boolean set queries.

pub mod index;
pub mod postings;
pub mod query;
pub mod search;

pub use index::{IndexOptions, IndexSnapshot, InvertedIndex};
pub use search::{BoolExpr, SearchHit};
