//! Posting lists: per-term `(doc id, term frequency)` pairs, stored sorted
//! by doc id and compressed with delta + varint coding (the doc-id gaps of
//! a Zipfian corpus compress extremely well).

use memex_store::codec::{decode_deltas, encode_deltas, get_uvarint, put_uvarint};
use memex_store::error::{StoreError, StoreResult};

/// A sorted posting list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    /// `(doc, tf)` sorted by doc, no duplicate docs, tf >= 1.
    entries: Vec<(u32, u32)>,
}

impl PostingList {
    pub fn new() -> PostingList {
        PostingList::default()
    }

    /// Build from possibly-unsorted pairs; duplicate docs keep the larger tf
    /// (idempotent re-adds).
    pub fn from_pairs(mut pairs: Vec<(u32, u32)>) -> PostingList {
        pairs.sort_unstable_by_key(|&(d, _)| d);
        let mut entries: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
        for (d, tf) in pairs {
            if tf == 0 {
                continue;
            }
            match entries.last_mut() {
                Some((last, ltf)) if *last == d => *ltf = (*ltf).max(tf),
                _ => entries.push((d, tf)),
            }
        }
        PostingList { entries }
    }

    pub fn entries(&self) -> &[(u32, u32)] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted doc ids only.
    pub fn docs(&self) -> Vec<u32> {
        self.entries.iter().map(|&(d, _)| d).collect()
    }

    /// Append a posting with `doc` greater than everything present.
    pub fn push(&mut self, doc: u32, tf: u32) -> StoreResult<()> {
        if let Some(&(last, _)) = self.entries.last() {
            if doc <= last {
                return Err(StoreError::Invalid(format!(
                    "posting doc {doc} not greater than last {last}"
                )));
            }
        }
        if tf == 0 {
            return Err(StoreError::Invalid("tf must be >= 1".into()));
        }
        self.entries.push((doc, tf));
        Ok(())
    }

    /// Union with another list (same term from another segment); duplicate
    /// docs keep the larger tf.
    pub fn merge(&self, other: &PostingList) -> PostingList {
        let mut pairs = self.entries.clone();
        pairs.extend_from_slice(&other.entries);
        PostingList::from_pairs(pairs)
    }

    /// Compressed encoding: delta-coded doc ids then varint tfs.
    pub fn encode(&self) -> StoreResult<Vec<u8>> {
        let mut out = Vec::with_capacity(self.entries.len() * 2 + 8);
        let docs: Vec<u64> = self.entries.iter().map(|&(d, _)| u64::from(d)).collect();
        encode_deltas(&mut out, &docs)?;
        for &(_, tf) in &self.entries {
            put_uvarint(&mut out, u64::from(tf));
        }
        Ok(out)
    }

    /// Inverse of [`PostingList::encode`].
    pub fn decode(bytes: &[u8]) -> StoreResult<PostingList> {
        let mut pos = 0usize;
        let docs = decode_deltas(bytes, &mut pos)?;
        let mut entries = Vec::with_capacity(docs.len());
        for d in docs {
            let tf = get_uvarint(bytes, &mut pos)? as u32;
            let doc =
                u32::try_from(d).map_err(|_| StoreError::Corrupt("doc id exceeds u32".into()))?;
            entries.push((doc, tf));
        }
        Ok(PostingList { entries })
    }
}

/// A positional posting list: per document, the sorted token positions at
/// which the term occurs. Positions are indices into the document's
/// filtered (stopped + stemmed) token sequence, so phrase queries analysed
/// the same way line up exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PositionalList {
    /// `(doc, positions)` sorted by doc; positions sorted, non-empty.
    entries: Vec<(u32, Vec<u32>)>,
}

impl PositionalList {
    pub fn new() -> PositionalList {
        PositionalList::default()
    }

    pub fn entries(&self) -> &[(u32, Vec<u32>)] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Positions of the term in `doc` (empty slice when absent).
    pub fn positions(&self, doc: u32) -> &[u32] {
        self.entries
            .binary_search_by_key(&doc, |&(d, _)| d)
            .map(|i| self.entries[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// Append a document's occurrences; `doc` must exceed all present,
    /// `positions` must be sorted strictly increasing and non-empty.
    pub fn push(&mut self, doc: u32, positions: Vec<u32>) -> StoreResult<()> {
        if positions.is_empty() {
            return Err(StoreError::Invalid("empty position list".into()));
        }
        if positions.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::Invalid(
                "positions not strictly increasing".into(),
            ));
        }
        if let Some(&(last, _)) = self.entries.last() {
            if doc <= last {
                return Err(StoreError::Invalid(format!(
                    "positional doc {doc} not greater than last {last}"
                )));
            }
        }
        self.entries.push((doc, positions));
        Ok(())
    }

    /// Union with another list (segments of the same term); on duplicate
    /// docs the larger position set wins (idempotent re-adds).
    pub fn merge(&self, other: &PositionalList) -> PositionalList {
        let mut map: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
        for (d, p) in self.entries.iter().chain(other.entries.iter()) {
            let e = map.entry(*d).or_default();
            if p.len() > e.len() {
                *e = p.clone();
            }
        }
        PositionalList {
            entries: map.into_iter().collect(),
        }
    }

    /// Compressed encoding: delta docs, then per doc a delta position list.
    pub fn encode(&self) -> StoreResult<Vec<u8>> {
        let mut out = Vec::with_capacity(self.entries.len() * 4 + 8);
        let docs: Vec<u64> = self.entries.iter().map(|&(d, _)| u64::from(d)).collect();
        encode_deltas(&mut out, &docs)?;
        for (_, positions) in &self.entries {
            let ps: Vec<u64> = positions.iter().map(|&p| u64::from(p)).collect();
            encode_deltas(&mut out, &ps)?;
        }
        Ok(out)
    }

    /// Inverse of [`PositionalList::encode`].
    pub fn decode(bytes: &[u8]) -> StoreResult<PositionalList> {
        let mut pos = 0usize;
        let docs = decode_deltas(bytes, &mut pos)?;
        let mut entries = Vec::with_capacity(docs.len());
        for d in docs {
            let doc =
                u32::try_from(d).map_err(|_| StoreError::Corrupt("doc id exceeds u32".into()))?;
            let ps = decode_deltas(bytes, &mut pos)?;
            let positions: Vec<u32> = ps
                .into_iter()
                .map(|p| {
                    u32::try_from(p).map_err(|_| StoreError::Corrupt("position exceeds u32".into()))
                })
                .collect::<StoreResult<_>>()?;
            entries.push((doc, positions));
        }
        Ok(PositionalList { entries })
    }
}

/// Sorted-vec set intersection.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Sorted-vec set union.
pub fn union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    out.push(x);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(y);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    i += 1;
                    j += 1;
                }
            },
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => break,
        }
    }
    out
}

/// Sorted-vec set difference `a \ b`.
pub fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sort_dedup() {
        let p = PostingList::from_pairs(vec![(5, 2), (1, 1), (5, 3), (9, 1), (3, 0)]);
        assert_eq!(p.entries(), &[(1, 1), (5, 3), (9, 1)]);
        assert_eq!(p.docs(), vec![1, 5, 9]);
    }

    #[test]
    fn push_enforces_order() {
        let mut p = PostingList::new();
        p.push(3, 1).unwrap();
        p.push(7, 2).unwrap();
        assert!(p.push(7, 1).is_err());
        assert!(p.push(2, 1).is_err());
        assert!(p.push(9, 0).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = PostingList::from_pairs((0..500).map(|i| (i * 7, i % 9 + 1)).collect());
        let bytes = p.encode().unwrap();
        assert_eq!(PostingList::decode(&bytes).unwrap(), p);
        // Compression sanity: far below 8 bytes/posting for small gaps.
        assert!(
            bytes.len() < p.len() * 4,
            "{} bytes for {} postings",
            bytes.len(),
            p.len()
        );
        let empty = PostingList::new();
        assert_eq!(
            PostingList::decode(&empty.encode().unwrap()).unwrap(),
            empty
        );
    }

    #[test]
    fn merge_unions_and_keeps_max_tf() {
        let a = PostingList::from_pairs(vec![(1, 2), (3, 1)]);
        let b = PostingList::from_pairs(vec![(2, 1), (3, 4)]);
        let m = a.merge(&b);
        assert_eq!(m.entries(), &[(1, 2), (2, 1), (3, 4)]);
    }

    #[test]
    fn set_ops() {
        let a = vec![1, 3, 5, 7];
        let b = vec![3, 4, 5, 8];
        assert_eq!(intersect(&a, &b), vec![3, 5]);
        assert_eq!(union(&a, &b), vec![1, 3, 4, 5, 7, 8]);
        assert_eq!(difference(&a, &b), vec![1, 7]);
        assert_eq!(intersect(&a, &[]), Vec::<u32>::new());
        assert_eq!(union(&a, &[]), a);
        assert_eq!(difference(&a, &[]), a);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PostingList::decode(&[0xFF, 0xFF, 0xFF]).is_err());
    }

    #[test]
    fn positional_round_trip() {
        let mut p = PositionalList::new();
        p.push(3, vec![0, 4, 9]).unwrap();
        p.push(10, vec![2]).unwrap();
        let enc = p.encode().unwrap();
        assert_eq!(PositionalList::decode(&enc).unwrap(), p);
        assert_eq!(p.positions(3), &[0, 4, 9]);
        assert_eq!(p.positions(10), &[2]);
        assert!(p.positions(99).is_empty());
    }

    #[test]
    fn positional_push_validation() {
        let mut p = PositionalList::new();
        assert!(p.push(1, vec![]).is_err());
        assert!(p.push(1, vec![3, 3]).is_err());
        p.push(5, vec![1, 2]).unwrap();
        assert!(p.push(5, vec![0]).is_err(), "doc order enforced");
        assert!(p.push(4, vec![0]).is_err());
    }

    #[test]
    fn positional_merge_keeps_richer_entry() {
        let mut a = PositionalList::new();
        a.push(1, vec![0]).unwrap();
        a.push(3, vec![1, 5]).unwrap();
        let mut b = PositionalList::new();
        b.push(1, vec![0, 7]).unwrap();
        b.push(2, vec![4]).unwrap();
        let m = a.merge(&b);
        assert_eq!(m.positions(1), &[0, 7]);
        assert_eq!(m.positions(2), &[4]);
        assert_eq!(m.positions(3), &[1, 5]);
        assert_eq!(m.len(), 3);
    }
}
