//! The pager: fixed-size page allocation over a [`Storage`] backing (file
//! or memory) fronted by a bounded buffer pool with LRU eviction.
//!
//! The B+Tree never touches the backing store directly — every read and
//! write goes through the pool, so hot index pages stay cached exactly like
//! Berkeley DB's `mpool` did for the original Memex server.
//!
//! The pool is **no-steal**: dirty pages are only ever written to the
//! backing store by [`Pager::flush`], never by eviction. This is the
//! write-ahead invariant's other half — the store above (see `KvStore`)
//! syncs its WAL before calling `flush`, so a data page can never reach
//! disk while the log records that produced it are still volatile. When
//! every frame is dirty the pool grows past its capacity instead of
//! stealing (counted in `store.pager.soft_overflows`), and `flush` shrinks
//! it back.

use std::collections::HashMap;
use std::path::Path;

use memex_obs::{Counter, MetricsRegistry};

use crate::codec::{get_u64, put_u64};
use crate::error::{StoreError, StoreResult};
use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::vfs::{FileStorage, MemStorage, Storage};

/// Magic number in the meta page identifying a memex-store file.
const META_MAGIC: u64 = 0x4D45_4D45_584B_5631; // "MEMEXKV1"

/// A cached page plus bookkeeping.
struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

/// Persistent meta state kept in page 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meta {
    /// Total pages ever allocated, including the meta page.
    page_count: u64,
    /// Head of the free-page chain (each free page stores its successor in
    /// its first 8 bytes), or [`NO_PAGE`].
    free_head: PageId,
    /// Root page registered by the structure living on top (B+Tree root).
    root: PageId,
}

impl Meta {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        put_u64(&mut out, META_MAGIC);
        put_u64(&mut out, self.page_count);
        put_u64(&mut out, self.free_head);
        put_u64(&mut out, self.root);
        out
    }

    fn decode(bytes: &[u8]) -> StoreResult<Meta> {
        let mut pos = 0;
        let magic = get_u64(bytes, &mut pos)?;
        if magic != META_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "bad meta magic {magic:#x}, not a memex-store file"
            )));
        }
        Ok(Meta {
            page_count: get_u64(bytes, &mut pos)?,
            free_head: get_u64(bytes, &mut pos)?,
            root: get_u64(bytes, &mut pos)?,
        })
    }
}

/// Obs handles (inert until [`Pager::attach_registry`] is called).
#[derive(Default)]
struct PagerMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    flushed_pages: Counter,
    soft_overflows: Counter,
}

/// Buffer-pooled page manager.
pub struct Pager {
    backing: Box<dyn Storage>,
    pool: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    meta: Meta,
    meta_dirty: bool,
    metrics: PagerMetrics,
}

impl Pager {
    /// Create a fresh in-memory pager (no persistence).
    pub fn in_memory(pool_capacity: usize) -> Pager {
        Self::with_storage(Box::new(MemStorage::new()), pool_capacity)
            .expect("mem storage cannot fail to open")
    }

    /// Open (or create) a file-backed pager.
    pub fn open_file<P: AsRef<Path>>(path: P, pool_capacity: usize) -> StoreResult<Pager> {
        Self::with_storage(Box::new(FileStorage::open(path)?), pool_capacity)
    }

    /// Open over an arbitrary storage (the fault-injection entry point).
    /// An empty backing is initialised with a fresh meta page; a non-empty
    /// one must carry a valid meta page.
    pub fn with_storage(mut backing: Box<dyn Storage>, pool_capacity: usize) -> StoreResult<Pager> {
        let len = backing.len()?;
        let meta = if len == 0 {
            let meta = Meta {
                page_count: 1,
                free_head: NO_PAGE,
                root: NO_PAGE,
            };
            let mut page = Page::zeroed();
            page.write_prefix(&meta.encode());
            backing.write_all_at(0, page.bytes())?;
            backing.sync()?;
            meta
        } else {
            if len % PAGE_SIZE as u64 != 0 {
                return Err(StoreError::Corrupt(format!(
                    "file length {len} is not a multiple of the page size"
                )));
            }
            let mut buf = [0u8; PAGE_SIZE];
            backing.read_exact_at(0, &mut buf)?;
            Meta::decode(&buf)?
        };
        Ok(Pager {
            backing,
            pool: HashMap::new(),
            capacity: pool_capacity.max(8),
            tick: 0,
            meta,
            meta_dirty: false,
            metrics: PagerMetrics::default(),
        })
    }

    /// Register this pager's counters with `registry` (`store.pager.*`).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = PagerMetrics {
            hits: registry.counter("store.pager.hits"),
            misses: registry.counter("store.pager.misses"),
            evictions: registry.counter("store.pager.evictions"),
            flushed_pages: registry.counter("store.pager.flushed_pages"),
            soft_overflows: registry.counter("store.pager.soft_overflows"),
        };
    }

    /// The root page registered by the client structure, or `None`.
    pub fn root(&self) -> Option<PageId> {
        if self.meta.root == NO_PAGE {
            None
        } else {
            Some(self.meta.root)
        }
    }

    /// Register the client structure's root page.
    pub fn set_root(&mut self, root: PageId) {
        self.meta.root = root;
        self.meta_dirty = true;
    }

    /// Number of pages in the file (including meta and free pages).
    pub fn page_count(&self) -> u64 {
        self.meta.page_count
    }

    /// Allocate a page, reusing the free chain when possible.
    pub fn allocate(&mut self) -> StoreResult<PageId> {
        if self.meta.free_head != NO_PAGE {
            let id = self.meta.free_head;
            let page = self.read(id)?;
            let mut pos = 0;
            self.meta.free_head = get_u64(page.bytes(), &mut pos)?;
            self.meta_dirty = true;
            // Hand back a clean page.
            self.write(id, Page::zeroed());
            return Ok(id);
        }
        let id = self.meta.page_count;
        self.meta.page_count += 1;
        self.meta_dirty = true;
        self.write(id, Page::zeroed());
        Ok(id)
    }

    /// Return a page to the free chain.
    pub fn free(&mut self, id: PageId) {
        debug_assert_ne!(id, 0, "cannot free the meta page");
        let mut page = Page::zeroed();
        let mut head = Vec::with_capacity(8);
        put_u64(&mut head, self.meta.free_head);
        page.write_prefix(&head);
        self.write(id, page);
        self.meta.free_head = id;
        self.meta_dirty = true;
    }

    /// Read a page (through the pool), returning an owned copy.
    pub fn read(&mut self, id: PageId) -> StoreResult<Page> {
        if id >= self.meta.page_count {
            return Err(StoreError::Invalid(format!(
                "page {id} out of range (count {})",
                self.meta.page_count
            )));
        }
        self.tick += 1;
        if let Some(frame) = self.pool.get_mut(&id) {
            frame.last_used = self.tick;
            self.metrics.hits.inc();
            return Ok(frame.page.clone());
        }
        self.metrics.misses.inc();
        let page = self.load(id)?;
        self.insert_frame(id, page.clone(), false);
        Ok(page)
    }

    /// Write a page (into the pool; flushed lazily by [`Pager::flush`]).
    pub fn write(&mut self, id: PageId, page: Page) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(frame) = self.pool.get_mut(&id) {
            frame.page = page;
            frame.dirty = true;
            frame.last_used = tick;
            return;
        }
        self.insert_frame(id, page, true);
    }

    /// Flush every dirty page and the meta page to the backing store, then
    /// shrink the pool back under its capacity (dropping clean LRU frames).
    pub fn flush(&mut self) -> StoreResult<()> {
        let mut dirty: Vec<PageId> = self
            .pool
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        self.metrics.flushed_pages.add(dirty.len() as u64);
        for id in dirty {
            let page = self
                .pool
                .get(&id)
                .expect("dirty id came from pool")
                .page
                .clone();
            self.store(id, &page)?;
            self.pool.get_mut(&id).expect("still present").dirty = false;
        }
        if self.meta_dirty {
            let mut page = Page::zeroed();
            page.write_prefix(&self.meta.encode());
            self.store(0, &page)?;
            self.meta_dirty = false;
        }
        self.backing.sync()?;
        while self.pool.len() > self.capacity {
            if !self.evict_clean_lru() {
                break; // unreachable: everything is clean after a flush
            }
        }
        Ok(())
    }

    /// True when the no-steal pool has grown past its configured capacity
    /// (all frames dirty) — the signal that the layer above should sync
    /// its log and flush.
    pub fn over_capacity(&self) -> bool {
        self.pool.len() > self.capacity
    }

    /// Fraction of reads served from the pool since creation (diagnostic).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    fn insert_frame(&mut self, id: PageId, page: Page, dirty: bool) {
        if self.pool.len() >= self.capacity && !self.evict_clean_lru() {
            // No clean victim: grow past capacity rather than stealing a
            // dirty page (which would write data ahead of its log records).
            self.metrics.soft_overflows.inc();
        }
        self.pool.insert(
            id,
            Frame {
                page,
                dirty,
                last_used: self.tick,
            },
        );
    }

    /// Evict the least-recently-used *clean* frame. Returns false when
    /// every frame is dirty.
    fn evict_clean_lru(&mut self) -> bool {
        let victim = self
            .pool
            .iter()
            .filter(|(_, f)| !f.dirty)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(&id, _)| id);
        match victim {
            Some(id) => {
                self.pool.remove(&id);
                self.metrics.evictions.inc();
                true
            }
            None => false,
        }
    }

    /// Load a page directly from the backing store.
    fn load(&mut self, id: PageId) -> StoreResult<Page> {
        let offset = id * PAGE_SIZE as u64;
        if offset >= self.backing.len()? {
            // Page allocated but never flushed: it is logically zero.
            return Ok(Page::zeroed());
        }
        let mut buf = [0u8; PAGE_SIZE];
        self.backing.read_exact_at(offset, &mut buf)?;
        Page::from_bytes(&buf).ok_or_else(|| StoreError::Corrupt("short page read".into()))
    }

    /// Store a page directly to the backing store.
    fn store(&mut self, id: PageId, page: &Page) -> StoreResult<()> {
        let offset = id * PAGE_SIZE as u64;
        self.backing.write_all_at(offset, page.bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memex-pager-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn allocate_read_write_roundtrip_mem() {
        let mut pager = Pager::in_memory(16);
        let id = pager.allocate().unwrap();
        let mut page = Page::zeroed();
        page.write_prefix(b"trail data");
        pager.write(id, page);
        let got = pager.read(id).unwrap();
        assert_eq!(&got.bytes()[..10], b"trail data");
    }

    #[test]
    fn free_list_reuses_pages() {
        let mut pager = Pager::in_memory(16);
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        pager.free(a);
        let c = pager.allocate().unwrap();
        assert_eq!(c, a, "freed page should be reused first");
        // Reused pages come back zeroed.
        assert!(pager.read(c).unwrap().bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn eviction_keeps_data_consistent() {
        let mut pager = Pager::in_memory(8);
        let mut ids = Vec::new();
        for i in 0..64u64 {
            let id = pager.allocate().unwrap();
            let mut page = Page::zeroed();
            page.write_prefix(&i.to_le_bytes());
            pager.write(id, page);
            ids.push((id, i));
        }
        // No-steal: all 64 dirty pages are still pooled (soft overflow)…
        assert!(pager.over_capacity());
        pager.flush().unwrap();
        // …and a flush shrinks the pool back under capacity.
        assert!(pager.pool_len() <= 8);
        for (id, i) in ids {
            let page = pager.read(id).unwrap();
            assert_eq!(&page.bytes()[..8], &i.to_le_bytes());
        }
    }

    #[test]
    fn dirty_pages_never_hit_disk_before_flush() {
        let storage = crate::vfs::MemStorage::new();
        let handle = storage.handle();
        let mut pager = Pager::with_storage(Box::new(storage), 8).unwrap();
        let baseline = handle.current_bytes();
        for _ in 0..32 {
            let id = pager.allocate().unwrap();
            let mut page = Page::zeroed();
            page.write_prefix(b"dirty");
            pager.write(id, page);
        }
        assert_eq!(
            handle.current_bytes(),
            baseline,
            "no-steal: eviction pressure must not write dirty pages"
        );
        pager.flush().unwrap();
        assert_ne!(handle.current_bytes(), baseline);
    }

    #[test]
    fn file_backed_persists_across_reopen() {
        let path = tmpfile("persist");
        {
            let mut pager = Pager::open_file(&path, 8).unwrap();
            let id = pager.allocate().unwrap();
            let mut page = Page::zeroed();
            page.write_prefix(b"durable");
            pager.write(id, page);
            pager.set_root(id);
            pager.flush().unwrap();
        }
        {
            let mut pager = Pager::open_file(&path, 8).unwrap();
            let root = pager.root().expect("root persisted");
            let page = pager.read(root).unwrap();
            assert_eq!(&page.bytes()[..7], b"durable");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmpfile("garbage");
        std::fs::write(&path, vec![0xAB; PAGE_SIZE]).unwrap();
        assert!(Pager::open_file(&path, 8).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_range_read_is_an_error() {
        let mut pager = Pager::in_memory(8);
        assert!(pager.read(42).is_err());
    }
}
