//! Byte-level encoding primitives used across the storage layer:
//! LEB128-style varints, zigzag transforms for signed values, delta
//! encoding of sorted id sequences, length-prefixed byte strings, and a
//! table-driven CRC-32 (IEEE) used by the WAL to detect torn writes.
//!
//! Keeping the codec in one place means the B+Tree, the WAL, the relational
//! tuple format and the inverted-index postings (in `memex-index`) all share
//! the same, well-tested primitives.

use crate::error::{StoreError, StoreResult};

// ---------------------------------------------------------------------------
// varint
// ---------------------------------------------------------------------------

/// Append `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned varint from `buf[*pos..]`, advancing `*pos`.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> StoreResult<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| StoreError::Corrupt("varint truncated".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed integer so small magnitudes stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed varint (zigzag + LEB128).
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Decode a signed varint.
pub fn get_ivarint(buf: &[u8], pos: &mut usize) -> StoreResult<i64> {
    Ok(unzigzag(get_uvarint(buf, pos)?))
}

// ---------------------------------------------------------------------------
// length-prefixed bytes / fixed-width ints
// ---------------------------------------------------------------------------

/// Append `bytes` prefixed by its varint length.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_uvarint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Decode a length-prefixed byte string, advancing `*pos`.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> StoreResult<&'a [u8]> {
    let len = get_uvarint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| StoreError::Corrupt("byte-string length overflow".into()))?;
    if end > buf.len() {
        return Err(StoreError::Corrupt("byte string truncated".into()));
    }
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Append a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian u32, advancing `*pos`.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> StoreResult<u32> {
    let end = *pos + 4;
    if end > buf.len() {
        return Err(StoreError::Corrupt("u32 truncated".into()));
    }
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(b))
}

/// Append a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian u64, advancing `*pos`.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> StoreResult<u64> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(StoreError::Corrupt("u64 truncated".into()));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(b))
}

/// Append an f64 via its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Read an f64, advancing `*pos`.
pub fn get_f64(buf: &[u8], pos: &mut usize) -> StoreResult<f64> {
    Ok(f64::from_bits(get_u64(buf, pos)?))
}

// ---------------------------------------------------------------------------
// delta encoding for sorted u64 sequences (used by postings & trail ids)
// ---------------------------------------------------------------------------

/// Delta + varint encode a strictly increasing sequence.
///
/// Returns `Invalid` if the input is not strictly increasing — callers
/// depend on gaps being non-negative for the compact representation.
pub fn encode_deltas(out: &mut Vec<u8>, sorted: &[u64]) -> StoreResult<()> {
    put_uvarint(out, sorted.len() as u64);
    let mut prev = 0u64;
    for (i, &v) in sorted.iter().enumerate() {
        if i > 0 && v <= prev {
            return Err(StoreError::Invalid(
                "sequence not strictly increasing".into(),
            ));
        }
        let gap = if i == 0 { v } else { v - prev };
        put_uvarint(out, gap);
        prev = v;
    }
    Ok(())
}

/// Inverse of [`encode_deltas`].
pub fn decode_deltas(buf: &[u8], pos: &mut usize) -> StoreResult<Vec<u64>> {
    let n = get_uvarint(buf, pos)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut acc = 0u64;
    for i in 0..n {
        let gap = get_uvarint(buf, pos)?;
        acc = if i == 0 {
            gap
        } else {
            acc.checked_add(gap)
                .ok_or_else(|| StoreError::Corrupt("delta sum overflow".into()))?
        };
        out.push(acc);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected)
// ---------------------------------------------------------------------------

/// Lazily-built 256-entry CRC-32 lookup table.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `data`. Matches the ubiquitous zlib/PNG checksum, so it
/// is easy to cross-validate externally.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_rejects_truncation() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(get_uvarint(&buf, &mut pos).is_err());
    }

    #[test]
    fn ivarint_round_trips_signed_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn bytes_round_trip_and_reject_truncation() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        let mut pos = 0;
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"");
        let mut truncated = Vec::new();
        put_bytes(&mut truncated, b"hello");
        truncated.truncate(3);
        let mut pos = 0;
        assert!(get_bytes(&truncated, &mut pos).is_err());
    }

    #[test]
    fn deltas_round_trip() {
        let seq = vec![3u64, 4, 9, 1000, 1001, 1_000_000];
        let mut buf = Vec::new();
        encode_deltas(&mut buf, &seq).unwrap();
        let mut pos = 0;
        assert_eq!(decode_deltas(&buf, &mut pos).unwrap(), seq);
    }

    #[test]
    fn deltas_reject_non_increasing() {
        let mut buf = Vec::new();
        assert!(encode_deltas(&mut buf, &[5, 5]).is_err());
        let mut buf = Vec::new();
        assert!(encode_deltas(&mut buf, &[5, 4]).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fixed_width_round_trips() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.125);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), u64::MAX - 7);
        assert_eq!(get_f64(&buf, &mut pos).unwrap(), -0.125);
    }
}
