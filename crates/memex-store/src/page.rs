//! Fixed-size pages — the unit of I/O and buffering for the keyed store.

/// Size of every page in bytes. 4 KiB matches the filesystem block size the
/// original Berkeley DB deployment would have used.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a store file. Page 0 is always the meta page.
pub type PageId = u64;

/// Sentinel meaning "no page" (valid page ids start at 0, so we use MAX).
pub const NO_PAGE: PageId = u64::MAX;

/// A page-sized byte buffer.
///
/// Boxed so frames are cheap to move around the buffer pool without copying
/// 4 KiB on the stack.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Build a page from exactly `PAGE_SIZE` bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != PAGE_SIZE {
            return None;
        }
        let mut p = Page::zeroed();
        p.data.copy_from_slice(bytes);
        Some(p)
    }

    /// Read access to the raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Overwrite the leading bytes with `src` (the rest is untouched).
    /// Returns false if `src` does not fit.
    pub fn write_prefix(&mut self, src: &[u8]) -> bool {
        if src.len() > PAGE_SIZE {
            return false;
        }
        self.data[..src.len()].copy_from_slice(src);
        true
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_pages_are_all_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn from_bytes_requires_exact_size() {
        assert!(Page::from_bytes(&[0u8; PAGE_SIZE]).is_some());
        assert!(Page::from_bytes(&[0u8; PAGE_SIZE - 1]).is_none());
        assert!(Page::from_bytes(&[0u8; PAGE_SIZE + 1]).is_none());
    }

    #[test]
    fn write_prefix_bounds() {
        let mut p = Page::zeroed();
        assert!(p.write_prefix(b"abc"));
        assert_eq!(&p.bytes()[..3], b"abc");
        let too_big = vec![1u8; PAGE_SIZE + 1];
        assert!(!p.write_prefix(&too_big));
    }
}
