//! The loosely-consistent versioning system of paper §3: "a single producer
//! (crawler) and several consumers (indexer and statistical analyzers)"
//! coordinate through published epochs rather than shared transactions.
//!
//! * The **producer** appends batches; each batch gets an epoch number.
//!   Appended batches are invisible until [`VersionedLog::publish`] moves
//!   the watermark — so consumers always see a prefix-consistent snapshot.
//! * Each **consumer** tracks the epoch it has applied; [`Consumer::poll`]
//!   returns the published-but-unapplied batches. The gap between the
//!   producer watermark and a consumer is its *staleness* — the quantity
//!   experiment F3 measures under load.
//! * Fully-consumed batches can be trimmed (log compaction).

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use memex_obs::{Counter, Gauge, MetricsRegistry};

/// Monotone batch number. Epoch 0 means "nothing yet".
pub type Epoch = u64;

/// Obs handles (inert until [`VersionedLog::attach_registry`] is called).
#[derive(Default)]
struct LogMetrics {
    /// Registry kept so consumer gauges can be created lazily on register.
    registry: Option<MetricsRegistry>,
    /// Producer watermark (`store.version.published`).
    published: Gauge,
    /// Retained (untrimmed) batches (`store.version.retained`).
    retained: Gauge,
    /// Per-consumer staleness (`store.version.staleness.<consumer>`).
    staleness: HashMap<String, Gauge>,
    /// Epochs lost to trim before application (`store.version.skipped`).
    skipped: Counter,
}

impl LogMetrics {
    fn consumer_gauge(&mut self, name: &str) -> Gauge {
        match (self.staleness.get(name), &self.registry) {
            (Some(g), _) => g.clone(),
            (None, Some(reg)) => {
                let g = reg.gauge(&format!("store.version.staleness.{name}"));
                self.staleness.insert(name.to_string(), g.clone());
                g
            }
            (None, None) => Gauge::default(),
        }
    }
}

struct State<T> {
    /// Retained batches in epoch order (possibly trimmed at the front).
    batches: Vec<(Epoch, Arc<Vec<T>>)>,
    /// Highest epoch ever appended (may exceed `published`).
    appended: Epoch,
    /// Highest epoch visible to consumers.
    published: Epoch,
    /// Consumer name -> applied epoch.
    consumers: HashMap<String, Epoch>,
    /// Consumer name -> epochs that were trimmed away before the consumer
    /// could apply them (register-after-trim). Never silently folded into
    /// `applied` — callers can see exactly how much history they missed.
    skipped: HashMap<String, u64>,
    metrics: LogMetrics,
}

/// Shared, loosely-consistent, multi-consumer batch log.
pub struct VersionedLog<T> {
    state: Arc<RwLock<State<T>>>,
}

impl<T> Clone for VersionedLog<T> {
    fn clone(&self) -> Self {
        VersionedLog {
            state: Arc::clone(&self.state),
        }
    }
}

/// Per-consumer staleness report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalenessReport {
    pub consumer: String,
    pub applied: Epoch,
    pub published: Epoch,
    /// `published - applied`: how many epochs behind this consumer runs.
    pub staleness: u64,
    /// Epochs this consumer could never apply because they were trimmed
    /// before it saw them (register-after-trim). Zero in steady state.
    pub skipped: u64,
}

impl<T> Default for VersionedLog<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VersionedLog<T> {
    pub fn new() -> VersionedLog<T> {
        VersionedLog {
            state: Arc::new(RwLock::new(State {
                batches: Vec::new(),
                appended: 0,
                published: 0,
                consumers: HashMap::new(),
                skipped: HashMap::new(),
                metrics: LogMetrics::default(),
            })),
        }
    }

    /// Register this log's gauges with `registry` (`store.version.*`):
    /// the producer watermark, retained batch count, and one staleness
    /// gauge per consumer.
    pub fn attach_registry(&self, registry: &MetricsRegistry) {
        let mut s = self.state.write().unwrap_or_else(|e| e.into_inner());
        s.metrics = LogMetrics {
            registry: Some(registry.clone()),
            published: registry.gauge("store.version.published"),
            retained: registry.gauge("store.version.retained"),
            staleness: HashMap::new(),
            skipped: registry.counter("store.version.skipped"),
        };
        let names: Vec<String> = s.consumers.keys().cloned().collect();
        for name in names {
            let applied = s.consumers.get(&name).copied().unwrap_or(0);
            let published = s.published;
            let gauge = s.metrics.consumer_gauge(&name);
            gauge.set(published.saturating_sub(applied) as i64);
        }
    }

    /// Producer: stage a batch; returns its epoch. Not yet visible.
    pub fn append(&self, batch: Vec<T>) -> Epoch {
        let mut s = self.state.write().unwrap_or_else(|e| e.into_inner());
        s.appended += 1;
        let epoch = s.appended;
        s.batches.push((epoch, Arc::new(batch)));
        s.metrics.retained.set(s.batches.len() as i64);
        epoch
    }

    /// Producer: make everything appended so far visible. Returns the new
    /// watermark.
    pub fn publish(&self) -> Epoch {
        let mut s = self.state.write().unwrap_or_else(|e| e.into_inner());
        s.published = s.appended;
        let published = s.published;
        s.metrics.published.set(published as i64);
        // Publishing grows every consumer's backlog.
        let consumers: Vec<(String, Epoch)> =
            s.consumers.iter().map(|(n, &a)| (n.clone(), a)).collect();
        for (name, applied) in consumers {
            let gauge = s.metrics.consumer_gauge(&name);
            gauge.set(published.saturating_sub(applied) as i64);
        }
        published
    }

    /// Current visible watermark.
    pub fn published(&self) -> Epoch {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .published
    }

    /// Register a consumer starting from epoch 0 (sees all history that is
    /// still retained).
    pub fn register(&self, name: &str) -> Consumer<T> {
        let mut s = self.state.write().unwrap_or_else(|e| e.into_inner());
        s.consumers.entry(name.to_string()).or_insert(0);
        let applied = s.consumers.get(name).copied().unwrap_or(0);
        let published = s.published;
        let gauge = s.metrics.consumer_gauge(name);
        gauge.set(published.saturating_sub(applied) as i64);
        drop(s);
        Consumer {
            log: self.clone(),
            name: name.to_string(),
        }
    }

    /// Staleness of every registered consumer.
    pub fn staleness(&self) -> Vec<StalenessReport> {
        let s = self.state.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<StalenessReport> = s
            .consumers
            .iter()
            .map(|(name, &applied)| StalenessReport {
                consumer: name.clone(),
                applied,
                published: s.published,
                staleness: s.published.saturating_sub(applied),
                skipped: s.skipped.get(name).copied().unwrap_or(0),
            })
            .collect();
        out.sort_by(|a, b| a.consumer.cmp(&b.consumer));
        out
    }

    /// Drop batches already applied by every consumer. Returns how many
    /// batches were discarded.
    pub fn trim(&self) -> usize {
        let mut s = self.state.write().unwrap_or_else(|e| e.into_inner());
        let min_applied = s.consumers.values().copied().min().unwrap_or(0);
        let before = s.batches.len();
        s.batches.retain(|(e, _)| *e > min_applied);
        s.metrics.retained.set(s.batches.len() as i64);
        before - s.batches.len()
    }

    /// Number of retained batches (diagnostic).
    pub fn retained(&self) -> usize {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .batches
            .len()
    }
}

/// A named consumer cursor over a [`VersionedLog`].
pub struct Consumer<T> {
    log: VersionedLog<T>,
    name: String,
}

impl<T> Consumer<T> {
    /// Published batches not yet applied by this consumer, oldest first.
    /// Marks them applied. Batches are shared (`Arc`) — no cloning of items.
    pub fn poll(&self) -> Vec<(Epoch, Arc<Vec<T>>)> {
        self.poll_up_to(usize::MAX)
    }

    /// Like [`Consumer::poll`] but applies at most `max_batches` — the
    /// demon-scheduling primitive: a demon that takes only part of its
    /// backlog stays (measurably) stale on the rest rather than silently
    /// skipping it.
    ///
    /// The cursor advances only past epochs actually returned, plus any
    /// epochs that can *never* be returned because `trim` already
    /// discarded them (a consumer registered after the fact). Discarded
    /// epochs are counted as skipped — visible via [`Consumer::skipped`],
    /// [`VersionedLog::staleness`] and the `store.version.skipped`
    /// counter — instead of being silently folded into `applied`.
    pub fn poll_up_to(&self, max_batches: usize) -> Vec<(Epoch, Arc<Vec<T>>)> {
        let mut s = self.log.state.write().unwrap_or_else(|e| e.into_inner());
        let applied = *s.consumers.get(&self.name).unwrap_or(&0);
        let published = s.published;
        if applied >= published || max_batches == 0 {
            return Vec::new();
        }
        let out: Vec<(Epoch, Arc<Vec<T>>)> = s
            .batches
            .iter()
            .filter(|(e, _)| *e > applied && *e <= published)
            .take(max_batches)
            .map(|(e, b)| (*e, Arc::clone(b)))
            .collect();
        // Epochs in (applied, published] below the oldest retained batch
        // were trimmed before this consumer could apply them. They are
        // unavailable forever: skip past them (liveness) but say so.
        let first_retained = s.batches.first().map(|&(e, _)| e);
        let unavailable_hi = match first_retained {
            Some(first) => first.saturating_sub(1).min(published),
            None => published,
        };
        let skipped_now = unavailable_hi.saturating_sub(applied);
        if skipped_now > 0 {
            *s.skipped.entry(self.name.clone()).or_insert(0) += skipped_now;
            s.metrics.skipped.add(skipped_now);
        }
        let new_applied = out
            .last()
            .map(|&(e, _)| e)
            .unwrap_or(unavailable_hi)
            .max(applied);
        s.consumers.insert(self.name.clone(), new_applied);
        let gauge = s.metrics.consumer_gauge(&self.name);
        gauge.set(published.saturating_sub(new_applied) as i64);
        out
    }

    /// This consumer's applied epoch.
    pub fn applied(&self) -> Epoch {
        *self
            .log
            .state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .consumers
            .get(&self.name)
            .unwrap_or(&0)
    }

    /// How far behind the producer this consumer currently is.
    pub fn staleness(&self) -> u64 {
        let s = self.log.state.read().unwrap_or_else(|e| e.into_inner());
        s.published
            .saturating_sub(*s.consumers.get(&self.name).unwrap_or(&0))
    }

    /// Epochs this consumer could never apply because trim discarded them
    /// first (register-after-trim). Zero in steady state.
    pub fn skipped(&self) -> u64 {
        let s = self.log.state.read().unwrap_or_else(|e| e.into_inner());
        s.skipped.get(&self.name).copied().unwrap_or(0)
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpublished_batches_are_invisible() {
        let log: VersionedLog<u32> = VersionedLog::new();
        let indexer = log.register("indexer");
        log.append(vec![1, 2]);
        assert!(
            indexer.poll().is_empty(),
            "append without publish is invisible"
        );
        log.publish();
        let got = indexer.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(*got[0].1, vec![1, 2]);
    }

    #[test]
    fn consumers_progress_independently() {
        let log: VersionedLog<u32> = VersionedLog::new();
        let fast = log.register("indexer");
        let slow = log.register("analyzer");
        for i in 0..5 {
            log.append(vec![i]);
        }
        log.publish();
        assert_eq!(fast.poll().len(), 5);
        assert_eq!(fast.staleness(), 0);
        assert_eq!(slow.staleness(), 5);
        let reports = log.staleness();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].consumer, "analyzer");
        assert_eq!(reports[0].staleness, 5);
        assert_eq!(slow.poll().len(), 5);
        assert_eq!(slow.staleness(), 0);
    }

    #[test]
    fn poll_is_exactly_once() {
        let log: VersionedLog<u32> = VersionedLog::new();
        let c = log.register("c");
        log.append(vec![1]);
        log.publish();
        assert_eq!(c.poll().len(), 1);
        assert!(c.poll().is_empty());
        log.append(vec![2]);
        log.publish();
        let got = c.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(*got[0].1, vec![2]);
    }

    #[test]
    fn poll_up_to_limits_and_tracks_staleness() {
        let log: VersionedLog<u32> = VersionedLog::new();
        let c = log.register("c");
        for i in 0..5 {
            log.append(vec![i]);
        }
        log.publish();
        let got = c.poll_up_to(2);
        assert_eq!(got.len(), 2);
        assert_eq!(c.staleness(), 3, "unapplied batches still count as stale");
        assert_eq!(c.poll_up_to(0).len(), 0);
        assert_eq!(c.poll_up_to(10).len(), 3);
        assert_eq!(c.staleness(), 0);
    }

    #[test]
    fn trim_respects_slowest_consumer() {
        let log: VersionedLog<u32> = VersionedLog::new();
        let a = log.register("a");
        let _b = log.register("b");
        for i in 0..4 {
            log.append(vec![i]);
        }
        log.publish();
        a.poll();
        assert_eq!(log.trim(), 0, "b has applied nothing; nothing trimmable");
        let b = log.register("b");
        b.poll();
        assert_eq!(log.trim(), 4);
        assert_eq!(log.retained(), 0);
    }

    /// Regression: a consumer registered *after* `trim` discarded epochs
    /// used to have its cursor silently jumped to `published`, pretending
    /// the trimmed epochs were applied. The cursor must still advance
    /// (liveness — demons wait on staleness reaching zero) but the gap has
    /// to be reported as skipped, and epochs that are still retained must
    /// be delivered, not jumped over.
    #[test]
    fn register_after_trim_reports_skipped_epochs() {
        let log: VersionedLog<u32> = VersionedLog::new();
        let early = log.register("early");
        for i in 0..3 {
            log.append(vec![i]);
        }
        log.publish();
        assert_eq!(early.poll().len(), 3);
        assert_eq!(log.trim(), 3, "epochs 1..=3 discarded");

        // Epochs 4 and 5 are published after the trim and still retained.
        log.append(vec![10]);
        log.append(vec![11]);
        log.publish();

        let late = log.register("late");
        assert_eq!(late.staleness(), 5);
        let got = late.poll_up_to(1);
        assert_eq!(got.len(), 1, "retained epoch 4 must be delivered");
        assert_eq!(got[0].0, 4, "cursor may not jump past retained epochs");
        assert_eq!(*got[0].1, vec![10]);
        assert_eq!(
            late.skipped(),
            3,
            "trimmed epochs 1..=3 reported, not hidden"
        );

        let got = late.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 5);
        assert_eq!(late.staleness(), 0, "cursor caught up — liveness preserved");
        assert_eq!(late.skipped(), 3, "skips counted once, not per poll");

        let report = log
            .staleness()
            .into_iter()
            .find(|r| r.consumer == "late")
            .unwrap();
        assert_eq!(report.skipped, 3);
        assert_eq!(report.staleness, 0);
    }

    /// If *everything* was trimmed, the late consumer's cursor must still
    /// reach `published` (liveness) while reporting the whole gap.
    #[test]
    fn register_after_full_trim_skips_all_and_stays_live() {
        let log: VersionedLog<u32> = VersionedLog::new();
        let early = log.register("early");
        for i in 0..4 {
            log.append(vec![i]);
        }
        log.publish();
        early.poll();
        assert_eq!(log.trim(), 4);

        let late = log.register("late");
        assert!(late.poll().is_empty());
        assert_eq!(late.staleness(), 0, "cursor advanced past the void");
        assert_eq!(late.skipped(), 4, "but the void is on the record");
    }

    #[test]
    fn concurrent_producer_and_consumers() {
        let log: VersionedLog<u64> = VersionedLog::new();
        let consumer = log.register("indexer");
        let producer = {
            let log = log.clone();
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    log.append(vec![i]);
                    if i % 5 == 4 {
                        log.publish();
                    }
                }
                log.publish();
            })
        };
        let collector = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while seen.len() < 100 {
                for (_, batch) in consumer.poll() {
                    seen.extend(batch.iter().copied());
                }
                std::thread::yield_now();
            }
            seen
        });
        producer.join().unwrap();
        let seen = collector.join().unwrap();
        assert_eq!(
            seen,
            (0..100).collect::<Vec<u64>>(),
            "order and completeness preserved"
        );
    }
}
