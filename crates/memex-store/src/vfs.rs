//! The storage VFS: raw-byte backing for the WAL and the pager, plus the
//! deterministic fault-injection layer behind experiment F3's recovery
//! claims.
//!
//! The paper's server "recovers from network and programming errors
//! quickly, even if it has to discard a few client events" (§3). Making
//! that claim *testable* needs failure to be a first-class input, so every
//! byte the store persists flows through a small [`Storage`] trait with
//! three implementations:
//!
//! * [`FileStorage`] — a real file (production path);
//! * [`MemStorage`] — an in-memory byte vector that **models crash
//!   semantics**: writes land in a "page cache" until [`Storage::sync`]
//!   makes them durable, and [`MemHandle::crash`] discards an arbitrary
//!   (seeded-random) suffix of the unsynced writes — exactly what a power
//!   cut does to a real disk;
//! * [`FaultyStorage`] — a decorator over any storage that injects I/O
//!   errors, short (torn) writes and sync failures from a seeded schedule
//!   or from a scripted [`FaultControl`] handle.
//!
//! Everything is deterministic given a seed, so any failing recovery run
//! is reproducible from the seed in the log.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use memex_obs::{Counter, MetricsRegistry};

/// Raw-byte backing for a log or page file. Implementations must make
/// `read_exact_at` observe all earlier `write_all_at`s (ordinary
/// read-your-writes, as the OS page cache provides); durability across a
/// crash is only promised for bytes written before the last [`sync`].
///
/// [`sync`]: Storage::sync
///
/// `Send + Sync` because the serving layer shares whole subsystems built
/// on storage (index, KV) behind an `RwLock`; every implementation here is
/// either plain owned data or already `Arc<Mutex<…>>`-based.
pub trait Storage: Send + Sync {
    /// Current size in bytes (includes unsynced writes).
    fn len(&self) -> io::Result<u64>;

    /// Fill `buf` from `offset`; reading past the end is an error.
    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Write all of `data` at `offset`, extending the backing if needed.
    /// A failing implementation may leave a *prefix* of `data` written —
    /// the torn-write case recovery must tolerate.
    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Make every prior write durable.
    fn sync(&mut self) -> io::Result<()>;

    /// Truncate (or extend with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// True when `len() == 0` (convenience; mirrors `is_empty` idiom).
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Boxed storages forward, so decorators like [`FaultyStorage`] can wrap
/// whatever a [`StorageDir`] hands out without knowing the concrete type.
impl<S: Storage + ?Sized> Storage for Box<S> {
    fn len(&self) -> io::Result<u64> {
        (**self).len()
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_exact_at(offset, buf)
    }

    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        (**self).write_all_at(offset, data)
    }

    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        (**self).set_len(len)
    }
}

// ---------------------------------------------------------------------------
// File storage
// ---------------------------------------------------------------------------

/// Production storage: a real file.
pub struct FileStorage {
    file: File,
}

impl FileStorage {
    /// Open (or create) `path` read-write without truncating.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<FileStorage> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileStorage { file })
    }
}

impl Storage for FileStorage {
    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let len = self.file.metadata()?.len();
        if offset > len {
            // Fill the gap so offsets stay meaningful.
            self.file.set_len(offset)?;
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

// ---------------------------------------------------------------------------
// Memory storage with crash semantics
// ---------------------------------------------------------------------------

/// A write not yet made durable by a sync.
enum PendingOp {
    Write { offset: u64, data: Vec<u8> },
    SetLen(u64),
}

struct MemInner {
    /// What a reader sees now (page cache + disk).
    current: Vec<u8>,
    /// What survives a crash with certainty (state as of the last sync).
    durable: Vec<u8>,
    /// Writes since the last sync, in order.
    pending: Vec<PendingOp>,
}

impl MemInner {
    fn apply(bytes: &mut Vec<u8>, op: &PendingOp, limit: Option<usize>) {
        match op {
            PendingOp::Write { offset, data } => {
                let n = limit.unwrap_or(data.len()).min(data.len());
                let off = *offset as usize;
                if bytes.len() < off + n {
                    bytes.resize(off + n, 0);
                }
                bytes[off..off + n].copy_from_slice(&data[..n]);
            }
            PendingOp::SetLen(len) => bytes.resize(*len as usize, 0),
        }
    }
}

/// In-memory [`Storage`] modelling an OS page cache over a disk.
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

/// A cloneable handle onto a [`MemStorage`]'s bytes, held by a test
/// harness while the store owns the storage itself. Supports simulating a
/// crash and re-reading the surviving bytes.
#[derive(Clone)]
pub struct MemHandle {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// Empty storage.
    pub fn new() -> MemStorage {
        MemStorage::from_bytes(Vec::new())
    }

    /// Storage pre-loaded with `bytes` (already durable).
    pub fn from_bytes(bytes: Vec<u8>) -> MemStorage {
        MemStorage {
            inner: Arc::new(Mutex::new(MemInner {
                current: bytes.clone(),
                durable: bytes,
                pending: Vec::new(),
            })),
        }
    }

    /// A harness-side handle onto this storage's bytes.
    pub fn handle(&self) -> MemHandle {
        MemHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// A storage view over an existing byte store (shared with any other
    /// views of the same file) — how [`MemDir`] re-opens a named file.
    fn from_inner(inner: Arc<Mutex<MemInner>>) -> MemStorage {
        MemStorage { inner }
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        MemStorage::new()
    }
}

impl MemHandle {
    /// The bytes a reader would see right now (including unsynced writes).
    pub fn current_bytes(&self) -> Vec<u8> {
        self.inner.lock().unwrap().current.clone()
    }

    /// The bytes guaranteed to survive a crash (state at the last sync).
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.inner.lock().unwrap().durable.clone()
    }

    /// Number of writes not yet covered by a sync.
    pub fn pending_ops(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Flip bits at `offset` (in both the cached and durable views) —
    /// models media corruption for recovery tests. Out-of-range offsets
    /// are ignored.
    pub fn corrupt(&self, offset: u64, xor: u8) {
        let mut inner = self.inner.lock().unwrap();
        let off = offset as usize;
        if let Some(b) = inner.current.get_mut(off) {
            *b ^= xor;
        }
        if let Some(b) = inner.durable.get_mut(off) {
            *b ^= xor;
        }
    }

    /// Simulate a crash: the durable state plus a seeded-random *prefix* of
    /// the pending writes survives; the final surviving write may itself be
    /// torn partway through. Returns the surviving bytes (also installed as
    /// the new current/durable state, with pending cleared — as if the
    /// machine rebooted).
    pub fn crash(&self, seed: u64) -> Vec<u8> {
        let mut inner = self.inner.lock().unwrap();
        let mut rng = SplitMix64::new(seed);
        let keep = if inner.pending.is_empty() {
            0
        } else {
            (rng.next() % (inner.pending.len() as u64 + 1)) as usize
        };
        let mut survived = inner.durable.clone();
        for op in &inner.pending[..keep] {
            MemInner::apply(&mut survived, op, None);
        }
        // Possibly tear the next write partway (a torn sector).
        if keep < inner.pending.len() && rng.next().is_multiple_of(2) {
            if let PendingOp::Write { data, .. } = &inner.pending[keep] {
                if !data.is_empty() {
                    let part = (rng.next() % data.len() as u64) as usize;
                    if part > 0 {
                        MemInner::apply(&mut survived, &inner.pending[keep], Some(part));
                    }
                }
            }
        }
        inner.current = survived.clone();
        inner.durable = survived.clone();
        inner.pending.clear();
        survived
    }
}

impl Storage for MemStorage {
    fn len(&self) -> io::Result<u64> {
        Ok(self.inner.lock().unwrap().current.len() as u64)
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let inner = self.inner.lock().unwrap();
        let off = offset as usize;
        let end = off + buf.len();
        if end > inner.current.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of mem storage",
            ));
        }
        buf.copy_from_slice(&inner.current[off..end]);
        Ok(())
    }

    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let op = PendingOp::Write {
            offset,
            data: data.to_vec(),
        };
        MemInner::apply(&mut inner.current, &op, None);
        inner.pending.push(op);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.durable = inner.current.clone();
        inner.pending.clear();
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let op = PendingOp::SetLen(len);
        MemInner::apply(&mut inner.current, &op, None);
        inner.pending.push(op);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Seeded fault schedule: each probability is expressed per 10 000
/// operations, so the schedule is integer-deterministic across platforms.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    pub seed: u64,
    /// Probability (per 10 000 reads) of an injected read error.
    pub read_err_per_10k: u32,
    /// Probability (per 10 000 writes) of an injected write error
    /// (nothing written).
    pub write_err_per_10k: u32,
    /// Probability (per 10 000 writes) of a short write: a prefix lands,
    /// then the write errors — the torn-write case.
    pub short_write_per_10k: u32,
    /// Probability (per 10 000 syncs) of a sync failure.
    pub sync_err_per_10k: u32,
}

/// Scripted one-shot faults plus injection counters, shared between the
/// [`FaultyStorage`] (owned by the store) and the test driving it.
#[derive(Default)]
struct FaultScript {
    fail_next_writes: u32,
    fail_next_syncs: u32,
    /// Syncs to let through before `fail_next_syncs` starts biting —
    /// lets a schedule target the K-th sync barrier inside a compound
    /// operation (checkpoint, seal, compaction).
    skip_syncs: u32,
    fail_next_set_lens: u32,
    /// Tear the next write after this many bytes (one-shot).
    tear_next_write_at: Option<usize>,
    injected_read_errors: u64,
    injected_write_errors: u64,
    injected_short_writes: u64,
    injected_sync_errors: u64,
    // Obs mirrors (inert until attach_registry).
    c_read: Counter,
    c_write: Counter,
    c_short: Counter,
    c_sync: Counter,
}

/// Cloneable control handle for a [`FaultyStorage`]: script one-shot
/// faults and read injection counters while the store owns the storage.
#[derive(Clone, Default)]
pub struct FaultControl {
    script: Arc<Mutex<FaultScript>>,
}

impl FaultControl {
    /// Fail the next `n` writes with an I/O error (nothing written).
    pub fn fail_next_writes(&self, n: u32) {
        self.script.lock().unwrap().fail_next_writes = n;
    }

    /// Fail the next `n` syncs.
    pub fn fail_next_syncs(&self, n: u32) {
        self.script.lock().unwrap().fail_next_syncs = n;
    }

    /// Let `skip` syncs through, then fail the following `n` — targets
    /// the (skip+1)-th sync barrier of a compound operation.
    pub fn fail_syncs_after(&self, skip: u32, n: u32) {
        let mut s = self.script.lock().unwrap_or_else(|e| e.into_inner());
        s.skip_syncs = skip;
        s.fail_next_syncs = n;
    }

    /// Fail the next `n` `set_len` calls.
    pub fn fail_next_set_lens(&self, n: u32) {
        self.script.lock().unwrap().fail_next_set_lens = n;
    }

    /// Tear the next write: `prefix` bytes land, then it errors.
    pub fn tear_next_write(&self, prefix: usize) {
        self.script.lock().unwrap().tear_next_write_at = Some(prefix);
    }

    /// (read, write, short-write, sync) errors injected so far.
    pub fn injected(&self) -> (u64, u64, u64, u64) {
        let s = self.script.lock().unwrap();
        (
            s.injected_read_errors,
            s.injected_write_errors,
            s.injected_short_writes,
            s.injected_sync_errors,
        )
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        let (r, w, s, y) = self.injected();
        r + w + s + y
    }

    /// Mirror injection counts into `registry` (`fault.injected.*`).
    /// Counter registration takes the registry's slot lock, so it happens
    /// before the script lock — never nested inside it.
    pub fn attach_registry(&self, registry: &MetricsRegistry) {
        let c_read = registry.counter("fault.injected.read_errors");
        let c_write = registry.counter("fault.injected.write_errors");
        let c_short = registry.counter("fault.injected.short_writes");
        let c_sync = registry.counter("fault.injected.sync_errors");
        let mut s = self.script.lock().unwrap();
        s.c_read = c_read;
        s.c_write = c_write;
        s.c_short = c_short;
        s.c_sync = c_sync;
    }
}

fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// Decorator that injects faults into any [`Storage`] from a seeded
/// schedule and/or a scripted [`FaultControl`].
pub struct FaultyStorage<S> {
    inner: S,
    cfg: FaultConfig,
    rng: SplitMix64,
    control: FaultControl,
}

impl<S: Storage> FaultyStorage<S> {
    pub fn new(inner: S, cfg: FaultConfig) -> FaultyStorage<S> {
        FaultyStorage::with_control(inner, cfg, FaultControl::default())
    }

    /// Like [`FaultyStorage::new`] but sharing an existing control handle,
    /// so every file a [`FaultyDir`] opens answers to one script and one
    /// set of injection counters.
    pub fn with_control(inner: S, cfg: FaultConfig, control: FaultControl) -> FaultyStorage<S> {
        FaultyStorage {
            inner,
            rng: SplitMix64::new(cfg.seed),
            cfg,
            control,
        }
    }

    /// The control handle (clone it before boxing the storage).
    pub fn control(&self) -> FaultControl {
        self.control.clone()
    }

    fn roll(&mut self, per_10k: u32) -> bool {
        per_10k > 0 && self.rng.next() % 10_000 < u64::from(per_10k)
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        if self.roll(self.cfg.read_err_per_10k) {
            let mut s = self.control.script.lock().unwrap();
            s.injected_read_errors += 1;
            s.c_read.inc();
            return Err(injected_err("read"));
        }
        self.inner.read_exact_at(offset, buf)
    }

    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let scripted_fail = {
            let mut s = self.control.script.lock().unwrap();
            if s.fail_next_writes > 0 {
                s.fail_next_writes -= 1;
                true
            } else {
                false
            }
        };
        if scripted_fail || self.roll(self.cfg.write_err_per_10k) {
            let mut s = self.control.script.lock().unwrap();
            s.injected_write_errors += 1;
            s.c_write.inc();
            return Err(injected_err("write"));
        }
        let tear_at = {
            let mut s = self.control.script.lock().unwrap();
            s.tear_next_write_at.take()
        };
        let tear_at = match tear_at {
            Some(t) => Some(t),
            None if self.roll(self.cfg.short_write_per_10k) && !data.is_empty() => {
                Some((self.rng.next() % data.len() as u64) as usize)
            }
            None => None,
        };
        if let Some(t) = tear_at {
            let t = t.min(data.len());
            // A prefix lands, then the device gives up.
            self.inner.write_all_at(offset, &data[..t])?;
            let mut s = self.control.script.lock().unwrap();
            s.injected_short_writes += 1;
            s.c_short.inc();
            return Err(injected_err("short write"));
        }
        self.inner.write_all_at(offset, data)
    }

    fn sync(&mut self) -> io::Result<()> {
        let scripted = {
            let mut s = self.control.script.lock().unwrap();
            if s.skip_syncs > 0 {
                s.skip_syncs -= 1;
                false
            } else if s.fail_next_syncs > 0 {
                s.fail_next_syncs -= 1;
                true
            } else {
                false
            }
        };
        if scripted || self.roll(self.cfg.sync_err_per_10k) {
            let mut s = self.control.script.lock().unwrap();
            s.injected_sync_errors += 1;
            s.c_sync.inc();
            return Err(injected_err("sync"));
        }
        self.inner.sync()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let scripted = {
            let mut s = self.control.script.lock().unwrap();
            if s.fail_next_set_lens > 0 {
                s.fail_next_set_lens -= 1;
                true
            } else {
                false
            }
        };
        if scripted {
            let mut s = self.control.script.lock().unwrap();
            s.injected_write_errors += 1;
            s.c_write.inc();
            return Err(injected_err("set_len"));
        }
        self.inner.set_len(len)
    }
}

// ---------------------------------------------------------------------------
// Directory storage
// ---------------------------------------------------------------------------

/// A flat namespace of named [`Storage`] files — what the LSM engine
/// stores its runs and manifest in. Three implementations mirror the
/// single-file story: [`FileDir`] (a real directory), [`MemDir`]
/// (in-memory, per-file crash semantics), and [`FaultyDir`] (injects
/// faults into every file it opens from one shared schedule/script).
pub trait StorageDir: Send + Sync {
    /// Open (or create) the named file.
    fn open(&self, name: &str) -> io::Result<Box<dyn Storage>>;

    /// Does the named file exist?
    fn exists(&self, name: &str) -> io::Result<bool>;

    /// Delete the named file. Deleting a missing file is an error, so
    /// recovery can distinguish "cleaned up" from "never existed".
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Names of every file in the directory, sorted.
    fn list(&self) -> io::Result<Vec<String>>;
}

/// FNV-1a, used to derive stable per-file seeds from a directory seed so
/// fault schedules and crash outcomes are reproducible per file name.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Production directory: real files under a root path.
pub struct FileDir {
    root: PathBuf,
}

impl FileDir {
    /// Open `root`, creating the directory if needed.
    pub fn open<P: AsRef<Path>>(root: P) -> io::Result<FileDir> {
        std::fs::create_dir_all(&root)?;
        Ok(FileDir {
            root: root.as_ref().to_path_buf(),
        })
    }
}

impl StorageDir for FileDir {
    fn open(&self, name: &str) -> io::Result<Box<dyn Storage>> {
        Ok(Box::new(FileStorage::open(self.root.join(name))?))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        Ok(self.root.join(name).exists())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.root.join(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }
}

type MemFiles = Arc<Mutex<BTreeMap<String, Arc<Mutex<MemInner>>>>>;

/// In-memory [`StorageDir`] whose files are [`MemStorage`]s — each file
/// keeps the page-cache crash model, and [`MemDirHandle::crash`] crashes
/// them all at once with per-file seeded outcomes. Clones share the same
/// files, so a harness can reopen a store over the directory it crashed.
#[derive(Clone)]
pub struct MemDir {
    files: MemFiles,
}

/// Harness-side handle onto a [`MemDir`]: crash the whole directory, or
/// reach into a single file's bytes.
#[derive(Clone)]
pub struct MemDirHandle {
    files: MemFiles,
}

impl MemDir {
    pub fn new() -> MemDir {
        MemDir {
            files: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    pub fn handle(&self) -> MemDirHandle {
        MemDirHandle {
            files: Arc::clone(&self.files),
        }
    }
}

impl Default for MemDir {
    fn default() -> Self {
        MemDir::new()
    }
}

impl StorageDir for MemDir {
    fn open(&self, name: &str) -> io::Result<Box<dyn Storage>> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let inner = files.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Mutex::new(MemInner {
                current: Vec::new(),
                durable: Vec::new(),
                pending: Vec::new(),
            }))
        });
        Ok(Box::new(MemStorage::from_inner(Arc::clone(inner))))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        Ok(files.contains_key(name))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        match files.remove(name) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such mem file: {name}"),
            )),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        Ok(files.keys().cloned().collect())
    }
}

impl MemDirHandle {
    /// Simulate a whole-machine crash: every file independently keeps its
    /// durable state plus a seeded prefix of its pending writes (the last
    /// surviving write possibly torn), exactly as [`MemHandle::crash`]
    /// does for one file. Per-file outcomes derive from `seed ^
    /// fnv64(name)`, so a run is reproducible from the directory seed.
    ///
    /// Independence across files is the right adversary here: the store's
    /// durability protocol may only rely on explicit sync barriers, never
    /// on cross-file write ordering.
    pub fn crash(&self, seed: u64) {
        let entries: Vec<(String, Arc<Mutex<MemInner>>)> = {
            let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
            files
                .iter()
                .map(|(name, inner)| (name.clone(), Arc::clone(inner)))
                .collect()
        };
        for (name, inner) in entries {
            let handle = MemHandle { inner };
            handle.crash(seed ^ fnv64(name.as_bytes()));
        }
    }

    /// A byte-level handle onto one file, if it exists.
    pub fn file(&self, name: &str) -> Option<MemHandle> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.get(name).map(|inner| MemHandle {
            inner: Arc::clone(inner),
        })
    }

    /// Current file names, sorted.
    pub fn names(&self) -> Vec<String> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.keys().cloned().collect()
    }
}

/// Decorator that wraps every file another [`StorageDir`] opens in a
/// [`FaultyStorage`] sharing one [`FaultControl`] and one seeded
/// schedule (per-file seeds derive from the file name, so outcomes are
/// stable across runs regardless of open order).
pub struct FaultyDir<D> {
    inner: D,
    cfg: FaultConfig,
    control: FaultControl,
}

impl<D: StorageDir> FaultyDir<D> {
    pub fn new(inner: D, cfg: FaultConfig) -> FaultyDir<D> {
        FaultyDir {
            inner,
            cfg,
            control: FaultControl::default(),
        }
    }

    /// The shared control handle (clone it before boxing the dir).
    pub fn control(&self) -> FaultControl {
        self.control.clone()
    }
}

impl<D: StorageDir> StorageDir for FaultyDir<D> {
    fn open(&self, name: &str) -> io::Result<Box<dyn Storage>> {
        let storage = self.inner.open(name)?;
        let cfg = FaultConfig {
            seed: self.cfg.seed ^ fnv64(name.as_bytes()),
            ..self.cfg
        };
        Ok(Box::new(FaultyStorage::with_control(
            storage,
            cfg,
            self.control.clone(),
        )))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        self.inner.exists(name)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
}

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, and identical on every platform — fault
/// schedules derived from it are reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    #[allow(clippy::should_implement_trait)] // an RNG step, not an iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_read_your_writes() {
        let mut s = MemStorage::new();
        s.write_all_at(0, b"hello").unwrap();
        s.write_all_at(5, b" world").unwrap();
        let mut buf = [0u8; 11];
        s.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert_eq!(s.len().unwrap(), 11);
        assert!(s.read_exact_at(6, &mut [0u8; 11]).is_err());
    }

    #[test]
    fn crash_discards_unsynced_suffix_only() {
        for seed in 0..32u64 {
            let mut s = MemStorage::new();
            let h = s.handle();
            s.write_all_at(0, b"durable!").unwrap();
            s.sync().unwrap();
            s.write_all_at(8, b"maybe").unwrap();
            s.write_all_at(13, b"lost").unwrap();
            let survived = h.crash(seed);
            assert!(survived.starts_with(b"durable!"), "synced prefix survives");
            assert!(survived.len() >= 8 && survived.len() <= 17);
            if survived.len() > 13 {
                // Writes survive in order: the second one (even torn) implies
                // the first landed whole.
                assert_eq!(&survived[8..13], b"maybe");
            }
        }
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let stage = || {
            let s = MemStorage::new();
            let h = s.handle();
            let mut s = s;
            s.write_all_at(0, b"base").unwrap();
            s.sync().unwrap();
            for i in 0..5u8 {
                s.write_all_at(4 + u64::from(i) * 3, &[i; 3]).unwrap();
            }
            h
        };
        assert_eq!(stage().crash(42), stage().crash(42));
    }

    #[test]
    fn faulty_storage_scripted_faults_fire_once() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultConfig::default());
        let ctl = s.control();
        ctl.fail_next_writes(1);
        assert!(s.write_all_at(0, b"x").is_err());
        assert!(s.write_all_at(0, b"x").is_ok());
        ctl.fail_next_syncs(2);
        assert!(s.sync().is_err());
        assert!(s.sync().is_err());
        assert!(s.sync().is_ok());
        assert_eq!(ctl.injected(), (0, 1, 0, 2));
    }

    #[test]
    fn faulty_storage_tears_writes() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultConfig::default());
        let ctl = s.control();
        ctl.tear_next_write(3);
        assert!(s.write_all_at(0, b"abcdef").is_err());
        assert_eq!(s.len().unwrap(), 3, "prefix landed before the error");
        let mut buf = [0u8; 3];
        s.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let run = |seed: u64| {
            let cfg = FaultConfig {
                seed,
                write_err_per_10k: 2_000,
                short_write_per_10k: 1_000,
                sync_err_per_10k: 1_500,
                ..FaultConfig::default()
            };
            let mut s = FaultyStorage::new(MemStorage::new(), cfg);
            let ctl = s.control();
            let mut outcome = Vec::new();
            for i in 0..200u64 {
                outcome.push(s.write_all_at(i * 4, &[1, 2, 3, 4]).is_ok());
                if i % 10 == 0 {
                    outcome.push(s.sync().is_ok());
                }
            }
            (outcome, ctl.injected_total())
        };
        assert_eq!(run(7), run(7));
        let (_, injected) = run(7);
        assert!(injected > 0, "schedule at 20%+ must fire over 200 ops");
        assert_ne!(run(7).0, run(8).0, "different seeds, different schedule");
    }

    #[test]
    fn mem_dir_round_trip_and_remove() {
        let dir = MemDir::new();
        {
            let mut f = dir.open("a").unwrap();
            f.write_all_at(0, b"alpha").unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = dir.open("b").unwrap();
            f.write_all_at(0, b"beta").unwrap();
        }
        assert_eq!(dir.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        assert!(dir.exists("a").unwrap());
        // Re-opening sees the same bytes.
        let mut f = dir.open("a").unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"alpha");
        dir.remove("b").unwrap();
        assert!(!dir.exists("b").unwrap());
        assert!(dir.remove("b").is_err(), "double remove is an error");
    }

    #[test]
    fn mem_dir_crash_keeps_synced_files_and_is_deterministic() {
        let stage = || {
            let dir = MemDir::new();
            let h = dir.handle();
            let mut a = dir.open("a").unwrap();
            a.write_all_at(0, b"durable").unwrap();
            a.sync().unwrap();
            let mut b = dir.open("b").unwrap();
            b.write_all_at(0, b"pending-bytes").unwrap();
            h
        };
        let h1 = stage();
        h1.crash(42);
        assert_eq!(
            h1.file("a").unwrap().current_bytes(),
            b"durable".to_vec(),
            "synced file survives whole"
        );
        let b1 = h1.file("b").unwrap().current_bytes();
        assert!(
            b1.len() <= 13,
            "unsynced file keeps at most what was written"
        );
        let h2 = stage();
        h2.crash(42);
        assert_eq!(
            b1,
            h2.file("b").unwrap().current_bytes(),
            "same seed, same outcome"
        );
    }

    #[test]
    fn faulty_dir_scripts_apply_across_files() {
        let dir = FaultyDir::new(MemDir::new(), FaultConfig::default());
        let ctl = dir.control();
        let mut a = dir.open("a").unwrap();
        let mut b = dir.open("b").unwrap();
        ctl.fail_next_writes(1);
        assert!(a.write_all_at(0, b"x").is_err(), "script hits first writer");
        assert!(b.write_all_at(0, b"y").is_ok(), "one-shot script is spent");
        assert_eq!(ctl.injected(), (0, 1, 0, 0));
    }

    #[test]
    fn file_dir_round_trip() {
        let mut p = std::env::temp_dir();
        p.push(format!("memex-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        let dir = FileDir::open(&p).unwrap();
        {
            let mut f = dir.open("run-1").unwrap();
            f.write_all_at(0, b"contents").unwrap();
            f.sync().unwrap();
        }
        assert_eq!(dir.list().unwrap(), vec!["run-1".to_string()]);
        assert!(dir.exists("run-1").unwrap());
        dir.remove("run-1").unwrap();
        assert!(dir.list().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&p);
    }

    #[test]
    fn file_storage_round_trip() {
        let mut p = std::env::temp_dir();
        p.push(format!("memex-vfs-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&p);
        {
            let mut s = FileStorage::open(&p).unwrap();
            s.write_all_at(0, b"0123456789").unwrap();
            s.sync().unwrap();
            s.set_len(6).unwrap();
        }
        {
            let mut s = FileStorage::open(&p).unwrap();
            assert_eq!(s.len().unwrap(), 6);
            let mut buf = [0u8; 6];
            s.read_exact_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"012345");
        }
        let _ = std::fs::remove_file(&p);
    }
}
