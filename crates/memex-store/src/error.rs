//! Error types shared by every storage component.

use std::fmt;

/// Result alias used throughout the store.
pub type StoreResult<T> = Result<T, StoreError>;

/// Unified error type for the storage substrate.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (file-backed pagers and WALs only).
    Io(std::io::Error),
    /// A page, record or file failed its integrity check (bad magic,
    /// CRC mismatch, truncated frame).
    Corrupt(String),
    /// A key or value exceeds the size a single B+Tree page can hold.
    TooLarge {
        what: &'static str,
        len: usize,
        max: usize,
    },
    /// Catalog-level misuse: unknown table, duplicate table, schema mismatch.
    Schema(String),
    /// A uniqueness constraint (primary key / unique index) was violated.
    Duplicate(String),
    /// Referenced row/key does not exist.
    NotFound(String),
    /// Invalid argument (empty key, bad column index, ...).
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corruption detected: {m}"),
            StoreError::TooLarge { what, len, max } => {
                write!(f, "{what} of {len} bytes exceeds maximum of {max}")
            }
            StoreError::Schema(m) => write!(f, "schema error: {m}"),
            StoreError::Duplicate(m) => write!(f, "duplicate key: {m}"),
            StoreError::NotFound(m) => write!(f, "not found: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = StoreError::TooLarge {
            what: "key",
            len: 9000,
            max: 1024,
        };
        assert_eq!(e.to_string(), "key of 9000 bytes exceeds maximum of 1024");
        let e = StoreError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::other("boom");
        let e: StoreError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
