//! The lightweight keyed store ("our Berkeley DB", paper §3): a WAL-fronted,
//! buffer-pooled B+Tree with crash recovery, used for fine-grained term-level
//! statistics where "storing term-level statistics in an RDBMS would have
//! overwhelming space and time overheads".

use std::ops::Bound;
use std::path::Path;

use memex_obs::{Counter, MetricsRegistry};

use crate::btree::BTree;
use crate::error::StoreResult;
use crate::pager::Pager;
use crate::vfs::Storage;
use crate::wal::{Wal, WalRecord};

/// Tuning knobs for a [`KvStore`].
#[derive(Debug, Clone)]
pub struct KvStoreOptions {
    /// Buffer-pool capacity in pages.
    pub pool_capacity: usize,
    /// Auto-checkpoint once the WAL grows beyond this many bytes.
    pub checkpoint_bytes: u64,
    /// Call `fsync` after every append (durability vs. throughput).
    pub sync_every_append: bool,
}

impl Default for KvStoreOptions {
    fn default() -> Self {
        KvStoreOptions {
            pool_capacity: 256,
            checkpoint_bytes: 4 << 20,
            sync_every_append: false,
        }
    }
}

/// Counters exposed for the F3 pipeline experiment and diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KvStats {
    pub puts: u64,
    pub deletes: u64,
    pub gets: u64,
    pub checkpoints: u64,
    /// Records recovered from the WAL at open time.
    pub recovered_records: u64,
    /// True if the last recovery found (and dropped) a torn tail.
    pub recovered_torn_tail: bool,
    /// Bytes the torn-tail repair truncated at open time.
    pub recovered_repaired_bytes: u64,
}

/// Obs handles (inert until [`KvStore::attach_registry`] is called).
#[derive(Default)]
struct KvMetrics {
    puts: Counter,
    gets: Counter,
    deletes: Counter,
    checkpoints: Counter,
}

/// A durable ordered key-value store.
pub struct KvStore {
    pager: Pager,
    tree: BTree,
    wal: Wal,
    len: u64,
    opts: KvStoreOptions,
    stats: KvStats,
    metrics: KvMetrics,
}

impl KvStore {
    /// Fully in-memory store (still exercises WAL + recovery code paths).
    pub fn open_memory() -> StoreResult<KvStore> {
        Self::build(
            Pager::in_memory(256),
            Wal::in_memory(),
            KvStoreOptions::default(),
        )
    }

    /// Open (or create) a store in `dir`, using `name.db` and `name.wal`.
    pub fn open_dir<P: AsRef<Path>>(
        dir: P,
        name: &str,
        opts: KvStoreOptions,
    ) -> StoreResult<KvStore> {
        std::fs::create_dir_all(&dir)?;
        let db_path = dir.as_ref().join(format!("{name}.db"));
        let wal_path = dir.as_ref().join(format!("{name}.wal"));
        let pager = Pager::open_file(db_path, opts.pool_capacity)?;
        let wal = Wal::open_file(wal_path)?;
        Self::build(pager, wal, opts)
    }

    /// Open over arbitrary [`Storage`] backings — the fault-injection
    /// entry point: wrap either side in a `FaultyStorage` (or hold a
    /// `MemHandle`) to script I/O failures and crashes.
    pub fn open_with_storage(
        wal_storage: Box<dyn Storage>,
        db_storage: Box<dyn Storage>,
        opts: KvStoreOptions,
    ) -> StoreResult<KvStore> {
        let pager = Pager::with_storage(db_storage, opts.pool_capacity)?;
        let wal = Wal::with_storage(wal_storage)?;
        Self::build(pager, wal, opts)
    }

    fn build(mut pager: Pager, mut wal: Wal, opts: KvStoreOptions) -> StoreResult<KvStore> {
        let mut tree = BTree::open(&mut pager)?;
        // Recovery: replay post-checkpoint records into the tree.
        let replay = wal.replay()?;
        let recovered = replay.records.len() as u64;
        for (_lsn, rec) in &replay.records {
            match rec {
                WalRecord::Put { key, value } => {
                    tree.insert(&mut pager, key, value)?;
                }
                WalRecord::Delete { key } => {
                    tree.delete(&mut pager, key)?;
                }
                WalRecord::Checkpoint => {}
            }
        }
        let len = tree.count(&mut pager)?;
        let mut store = KvStore {
            pager,
            tree,
            wal,
            len,
            opts,
            metrics: KvMetrics::default(),
            stats: KvStats {
                recovered_records: recovered,
                recovered_torn_tail: replay.torn_tail,
                recovered_repaired_bytes: replay.repaired_bytes,
                ..KvStats::default()
            },
        };
        if recovered > 0 || replay.torn_tail {
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// Register this store and its WAL / pager / B+Tree with `registry`
    /// (`store.kv.*`, `store.wal.*`, `store.pager.*`, `store.btree.*`).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.wal.attach_registry(registry);
        self.pager.attach_registry(registry);
        self.tree.attach_registry(registry);
        self.metrics = KvMetrics {
            puts: registry.counter("store.kv.puts"),
            gets: registry.counter("store.kv.gets"),
            deletes: registry.counter("store.kv.deletes"),
            checkpoints: registry.counter("store.kv.checkpoints"),
        };
        // Recovery happened at open time, before any registry existed —
        // surface what it found (`store.recovery.*`).
        registry
            .counter("store.recovery.replayed_records")
            .add(self.stats.recovered_records);
        if self.stats.recovered_torn_tail {
            registry.counter("store.recovery.torn_tails").inc();
        }
        registry
            .counter("store.recovery.repaired_bytes")
            .add(self.stats.recovered_repaired_bytes);
    }

    /// Upsert. Returns the previous value if any.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let _trace = memex_obs::trace::span("store.kv.put");
        self.wal.append(&WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        if self.opts.sync_every_append {
            self.wal.sync()?;
        }
        let old = self.tree.insert(&mut self.pager, key, value)?;
        if old.is_none() {
            self.len += 1;
        }
        self.stats.puts += 1;
        self.metrics.puts.inc();
        self.maybe_checkpoint()?;
        Ok(old)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let _trace = memex_obs::trace::span("store.kv.get");
        self.stats.gets += 1;
        self.metrics.gets.inc();
        self.tree.get(&mut self.pager, key)
    }

    /// Delete. Returns the removed value if present.
    pub fn delete(&mut self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        self.wal.append(&WalRecord::Delete { key: key.to_vec() })?;
        if self.opts.sync_every_append {
            self.wal.sync()?;
        }
        let old = self.tree.delete(&mut self.pager, key)?;
        if old.is_some() {
            self.len -= 1;
        }
        self.stats.deletes += 1;
        self.metrics.deletes.inc();
        self.maybe_checkpoint()?;
        Ok(old)
    }

    /// Ordered range visit; the callback returns `false` to stop early.
    pub fn for_each_range<F>(
        &mut self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: F,
    ) -> StoreResult<()>
    where
        F: FnMut(&[u8], &[u8]) -> bool,
    {
        self.tree.for_each_range(&mut self.pager, start, end, f)
    }

    /// Collect every `(key, value)` whose key starts with `prefix`.
    pub fn scan_prefix(&mut self, prefix: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.tree.for_each_range(
            &mut self.pager,
            Bound::Included(prefix),
            Bound::Unbounded,
            |k, v| {
                if !k.starts_with(prefix) {
                    return false;
                }
                out.push((k.to_vec(), v.to_vec()));
                true
            },
        )?;
        Ok(out)
    }

    /// Collect a bounded range.
    pub fn scan(
        &mut self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        self.tree.scan(&mut self.pager, start, end)
    }

    /// Entry count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flush the tree, mark the WAL checkpointed and truncate it.
    ///
    /// Crash-safety relies on the ordering here: `Wal::sync` makes every
    /// acked record durable in the log *before* `Pager::flush` writes and
    /// fsyncs the data file, which in turn happens before `Wal::truncate`
    /// destroys the replay log. Skipping the leading sync would open a
    /// window where a crash between flush and truncate leaves a durable
    /// tree alongside a *stale* durable log: replaying that shorter log
    /// over the newer tree rolls acked writes backward. With the
    /// write-ahead order, a crash at any point leaves either an intact
    /// log covering the old tree, or a log whose replay over the flushed
    /// tree is an idempotent re-application — never a state outside the
    /// `[synced, acked]` prefix window. The fault harness in
    /// `tests/fault.rs` exercises every step of this window.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        let _trace = memex_obs::trace::span("store.kv.checkpoint");
        self.wal.sync()?;
        self.pager.flush()?;
        self.wal.truncate()?;
        self.wal.append(&WalRecord::Checkpoint)?;
        self.wal.sync()?;
        self.stats.checkpoints += 1;
        self.metrics.checkpoints.inc();
        Ok(())
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Verify internal tree invariants (tests / debugging).
    pub fn check(&mut self) -> StoreResult<()> {
        self.tree.check_invariants(&mut self.pager)
    }

    /// Expose the WAL for fault-injection in recovery experiments.
    #[doc(hidden)]
    pub fn wal_mut(&mut self) -> &mut Wal {
        &mut self.wal
    }

    fn maybe_checkpoint(&mut self) -> StoreResult<()> {
        if self.pager.over_capacity() {
            // The no-steal pool is full of dirty pages. Write-ahead rule:
            // make the log durable *before* any data page reaches disk,
            // otherwise a crash could surface a page whose log records
            // were lost — recovered state would no longer be a prefix of
            // the acked operations.
            self.wal.sync()?;
            self.pager.flush()?;
        }
        if self.wal.len_bytes()? > self.opts.checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let mut kv = KvStore::open_memory().unwrap();
        assert!(kv.is_empty());
        kv.put(b"term:music", b"42").unwrap();
        kv.put(b"term:cycling", b"7").unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get(b"term:music").unwrap().unwrap(), b"42");
        let old = kv.put(b"term:music", b"43").unwrap();
        assert_eq!(old.unwrap(), b"42");
        assert_eq!(kv.len(), 2, "replace must not change len");
        assert_eq!(kv.delete(b"term:cycling").unwrap().unwrap(), b"7");
        assert_eq!(kv.len(), 1);
        assert!(kv.delete(b"absent").unwrap().is_none());
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_scan_isolates_namespace() {
        let mut kv = KvStore::open_memory().unwrap();
        kv.put(b"df:apple", b"3").unwrap();
        kv.put(b"df:banana", b"5").unwrap();
        kv.put(b"tf:apple", b"9").unwrap();
        let hits = kv.scan_prefix(b"df:").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(k, _)| k.starts_with(b"df:")));
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let dir = std::env::temp_dir().join(format!("memex-kv-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut kv = KvStore::open_dir(&dir, "t", KvStoreOptions::default()).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.checkpoint().unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.put(b"c", b"3").unwrap();
            kv.delete(b"a").unwrap();
            kv.wal_mut().sync().unwrap();
            // Simulate a crash: drop without flushing the pager.
        }
        {
            let mut kv = KvStore::open_dir(&dir, "t", KvStoreOptions::default()).unwrap();
            assert!(kv.stats().recovered_records >= 3);
            assert!(kv.get(b"a").unwrap().is_none());
            assert_eq!(kv.get(b"b").unwrap().unwrap(), b"2");
            assert_eq!(kv.get(b"c").unwrap().unwrap(), b"3");
            assert_eq!(kv.len(), 2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_drops_only_incomplete_record() {
        let dir = std::env::temp_dir().join(format!("memex-kv-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut kv = KvStore::open_dir(&dir, "t", KvStoreOptions::default()).unwrap();
            kv.put(b"keep", b"1").unwrap();
            kv.put(b"lost", b"2").unwrap();
            kv.wal_mut().sync().unwrap();
            kv.wal_mut().tear_tail(4).unwrap();
        }
        {
            let mut kv = KvStore::open_dir(&dir, "t", KvStoreOptions::default()).unwrap();
            assert!(kv.stats().recovered_torn_tail);
            assert_eq!(kv.get(b"keep").unwrap().unwrap(), b"1");
            assert!(
                kv.get(b"lost").unwrap().is_none(),
                "torn record must vanish"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_bounds_wal() {
        let mut kv = KvStore::open_memory().unwrap();
        kv.opts.checkpoint_bytes = 512;
        for i in 0..200u32 {
            kv.put(format!("k{i:05}").as_bytes(), &[0u8; 64]).unwrap();
        }
        assert!(kv.stats().checkpoints > 0);
        assert!(kv.wal_mut().len_bytes().unwrap() <= 1024);
        kv.check().unwrap();
        assert_eq!(kv.len(), 200);
    }

    #[test]
    fn ordered_iteration() {
        let mut kv = KvStore::open_memory().unwrap();
        for i in [5u32, 1, 9, 3, 7] {
            kv.put(format!("k{i}").as_bytes(), b"x").unwrap();
        }
        let mut keys = Vec::new();
        kv.for_each_range(Bound::Unbounded, Bound::Unbounded, |k, _| {
            keys.push(String::from_utf8(k.to_vec()).unwrap());
            true
        })
        .unwrap();
        assert_eq!(keys, vec!["k1", "k3", "k5", "k7", "k9"]);
    }
}
