//! # memex-store::lsm — log-structured MVCC engine
//!
//! The B+Tree engine ([`KvStore`](crate::kv::KvStore)) mutates pages in
//! place, so every reader shares a lock with the writer and a long scan
//! fights ingest. The archive workload the paper describes is the
//! opposite shape: browsers stream events in *continuously* while mining
//! demons read long-lived views. This module is the engine built for
//! that shape:
//!
//! * **Writes** land in a sorted in-memory memtable, logged through the
//!   same [`Wal`] the B+Tree uses (crash recovery replays it back).
//! * **Seal**: when the memtable outgrows its budget (or on an explicit
//!   checkpoint) it is written as one immutable sorted [`Run`] file on a
//!   [`StorageDir`], the [`Manifest`] records the new run set, and the
//!   WAL is truncated.
//! * **Tiered compaction**: runs carry a **level** (0 = freshly sealed).
//!   The background demon merges one tier — a maximal contiguous span of
//!   same-level runs — when it reaches `compact_min_runs`, producing one
//!   run a level deeper. Each record is therefore rewritten O(levels)
//!   times instead of O(total-data/seal) times, which is the whole point:
//!   the archive only grows, and full merges grow with it. Tombstones are
//!   dropped only when the merge reaches the **bottom** of the stack —
//!   anywhere else a dropped tombstone would resurrect a deleted key
//!   still shadowed in an older run.
//! * **Bloom + sparse index**: every run carries a bloom filter and a
//!   sparse block index (run format v2), so a point lookup consults only
//!   runs whose bloom admits the key and decodes one small block there —
//!   `get()` stays flat as runs accumulate. `store.lsm.bloom.{hit,skip,fp}`
//!   classify every probe.
//! * **MVCC snapshots**: [`LsmSnapshot`] clones the (bounded) memtable
//!   and grabs `Arc`s on the immutable runs under one brief read lock;
//!   every read after that touches no lock at all, so a mining demon can
//!   scan a pinned epoch while ingest and compaction continue.
//!
//! ## Durability protocol (the order is the contract)
//!
//! Seal: `wal.sync` → write+sync run file → manifest append+sync →
//! install in memory → WAL truncate+checkpoint. A crash between any two
//! steps recovers to a state in the `[synced, acked]` prefix window:
//! before the manifest append the full WAL replays; after it the run
//! holds the same data and WAL replay over it is idempotent (the leading
//! `wal.sync` is what makes it idempotent — without it a durable *prefix*
//! of the WAL could replay stale values over a newer run). Run files a
//! crash leaves un-referenced are deleted by the orphan scan at open and
//! counted in `store.recovery.orphan_runs`. Tier compaction follows the
//! same shape: write+sync merged run → manifest append+sync → swap; a
//! crash between the two leaves either the old state (new file is an
//! orphan) or the new one (victims are orphans).
//!
//! Lock order (declared in LINT.toml): `store.lsm.wake` →
//! `store.lsm.manifest` → `store.lsm.state` → `store.lsm.metrics`. The
//! manifest mutex also serializes run-set transitions (seal vs. compact),
//! so the run list read under it cannot change until it is released.
//! Reads (`get`/scans/`snapshot`) take `&self`: their shared counters are
//! atomics and the metrics handles sit behind an `RwLock` only so
//! `attach_registry` can swap them.

mod manifest;
mod run;

pub use run::{Probe, Run};

use std::collections::{BTreeMap, BTreeSet};
use std::iter::Peekable;
use std::ops::Bound;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use memex_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::engine::{Engine, EngineKind, SnapshotView};
use crate::error::StoreResult;
use crate::vfs::{FileDir, MemDir, StorageDir};
use crate::wal::{Wal, WalRecord};

use manifest::Manifest;

const MANIFEST_FILE: &str = "manifest";
const WAL_FILE: &str = "wal";

/// Tuning knobs for an [`LsmStore`].
#[derive(Debug, Clone, Copy)]
pub struct LsmOptions {
    /// Seal the memtable into a run once its tracked bytes exceed this.
    pub memtable_bytes: u64,
    /// Compact a tier once its run count reaches this.
    pub compact_min_runs: usize,
    /// Run the compaction demon on a background thread. Tests that need
    /// deterministic schedules turn this off and call
    /// [`LsmStore::compact_now`].
    pub background_compaction: bool,
    /// Call `fsync` after every WAL append (durability vs. throughput).
    pub sync_every_append: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        // `MEMEX_LSM_MEMTABLE_BYTES` tunes the seal budget without an API
        // change, mirroring how `MEMEX_ENGINE` picks the engine — stores
        // opened through the engine-neutral path get it for free.
        let memtable_bytes = std::env::var("MEMEX_LSM_MEMTABLE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(1 << 20);
        LsmOptions {
            memtable_bytes,
            compact_min_runs: 4,
            background_compaction: true,
            sync_every_append: false,
        }
    }
}

/// Diagnostic counters (mirrors [`KvStats`](crate::kv::KvStats)).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LsmStats {
    pub puts: u64,
    pub deletes: u64,
    pub gets: u64,
    pub seals: u64,
    /// Budget-triggered seals that failed and were deferred (the writes
    /// they covered stay acked in the WAL + memtable; see [`LsmStore::put`]).
    pub seal_errors: u64,
    pub compactions: u64,
    /// Records recovered from the WAL at open time.
    pub recovered_records: u64,
    /// True if recovery found (and dropped) a torn WAL or manifest tail.
    pub recovered_torn_tail: bool,
    /// Bytes trimmed repairing torn tails at open time.
    pub recovered_repaired_bytes: u64,
    /// Partially-written run files deleted by the orphan scan at open.
    pub recovered_orphan_runs: u64,
}

/// Live operation counters. Reads go through `&self`, so these are
/// atomics; [`LsmStore::stats`] assembles the `Copy` [`LsmStats`] view.
#[derive(Default)]
struct StatCells {
    puts: AtomicU64,
    deletes: AtomicU64,
    gets: AtomicU64,
    seals: AtomicU64,
    seal_errors: AtomicU64,
}

/// Obs handles (inert until [`LsmStore::attach_registry`]).
struct LsmMetrics {
    puts: Counter,
    gets: Counter,
    deletes: Counter,
    memtable_bytes: Gauge,
    seals: Counter,
    seal_errors: Counter,
    seal_latency: Histogram,
    runs: Gauge,
    levels: Gauge,
    compactions: Counter,
    compact_bytes: Counter,
    compact_latency: Histogram,
    compact_errors: Counter,
    read_amp: Histogram,
    bloom_hit: Counter,
    bloom_skip: Counter,
    bloom_fp: Counter,
    snapshots: Counter,
}

impl LsmMetrics {
    fn new(registry: &MetricsRegistry) -> LsmMetrics {
        LsmMetrics {
            puts: registry.counter("store.lsm.puts"),
            gets: registry.counter("store.lsm.gets"),
            deletes: registry.counter("store.lsm.deletes"),
            memtable_bytes: registry.gauge("store.lsm.memtable.bytes"),
            seals: registry.counter("store.lsm.seals"),
            seal_errors: registry.counter("store.lsm.seal.errors"),
            seal_latency: registry.histogram("store.lsm.seal.latency"),
            runs: registry.gauge("store.lsm.runs"),
            levels: registry.gauge("store.lsm.levels"),
            compactions: registry.counter("store.lsm.compactions"),
            compact_bytes: registry.counter("store.lsm.compact.bytes"),
            compact_latency: registry.histogram("store.lsm.compact.latency"),
            compact_errors: registry.counter("store.lsm.compact.errors"),
            read_amp: registry.histogram("store.lsm.read.amplification"),
            bloom_hit: registry.counter("store.lsm.bloom.hit"),
            bloom_skip: registry.counter("store.lsm.bloom.skip"),
            bloom_fp: registry.counter("store.lsm.bloom.fp"),
            snapshots: registry.counter("store.lsm.snapshots"),
        }
    }
}

impl Default for LsmMetrics {
    fn default() -> Self {
        LsmMetrics::new(&MetricsRegistry::disabled())
    }
}

/// One live run plus its tier level. Level 0 is freshly sealed; a tier
/// merge outputs one level deeper than its inputs.
#[derive(Clone)]
struct LeveledRun {
    run: Arc<Run>,
    level: u32,
}

/// Mutable engine state behind the RwLock: what a point-in-time view is
/// made of.
struct LsmState {
    /// Sorted write buffer; `None` = tombstone.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Tracked memtable footprint in bytes (keys + values + overhead).
    memtable_bytes: u64,
    /// Immutable runs, newest first; levels are non-decreasing front to
    /// back (level 0 youngest, deepest tier oldest).
    runs: Vec<LeveledRun>,
    /// Bumped on every run-set transition (seal or compaction).
    epoch: u64,
}

/// Per-entry bookkeeping cost used for the memtable budget.
fn entry_cost(key_len: usize, value_len: usize) -> u64 {
    (key_len + value_len + 32) as u64
}

impl LsmState {
    fn memtable_insert(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        let add = entry_cost(key.len(), value.as_ref().map_or(0, |v| v.len()));
        if let Some(old) = self.memtable.insert(key.to_vec(), value) {
            let sub = entry_cost(key.len(), old.as_ref().map_or(0, |v| v.len()));
            self.memtable_bytes = self.memtable_bytes.saturating_sub(sub);
        }
        self.memtable_bytes += add;
    }
}

/// Number of distinct levels in a run list.
fn level_count(runs: &[LeveledRun]) -> usize {
    runs.iter()
        .map(|r| r.level)
        .collect::<BTreeSet<u32>>()
        .len()
}

/// True when some tier (contiguous same-level span) holds at least
/// `min_runs` runs — i.e. a compaction pass would find work.
fn tier_ready(runs: &[LeveledRun], min_runs: usize) -> bool {
    select_tier(runs, min_runs).is_some()
}

/// Compactor wake-up channel.
#[derive(Default)]
struct WakeFlag {
    work: bool,
    shutdown: bool,
}

struct Wake {
    flag: Mutex<WakeFlag>,
    cond: Condvar,
}

/// State shared between the writer, readers (snapshots) and the
/// compaction demon.
struct LsmShared {
    state: RwLock<LsmState>,
    manifest: Mutex<Manifest>,
    metrics: RwLock<LsmMetrics>,
    /// Total compaction merges (shared so the demon's count in
    /// [`LsmStats::compactions`] too).
    compactions: AtomicU64,
    wake: Wake,
    dir: Arc<dyn StorageDir>,
}

/// The log-structured engine. Writes are writer-owned (`&mut` API like
/// [`KvStore`](crate::kv::KvStore)); reads take `&self` and concurrency
/// happens through [`LsmStore::snapshot`] handles and the background
/// compactor.
pub struct LsmStore {
    shared: Arc<LsmShared>,
    wal: Wal,
    opts: LsmOptions,
    stats: StatCells,
    /// Recovery facts from open time (`recovered_*` in [`LsmStats`]).
    recovered: LsmStats,
    compactor: Option<JoinHandle<()>>,
}

impl LsmStore {
    /// Fully in-memory store (still exercises WAL + run + manifest code).
    pub fn open_memory() -> StoreResult<LsmStore> {
        LsmStore::open_memory_opts(LsmOptions::default())
    }

    pub fn open_memory_opts(opts: LsmOptions) -> StoreResult<LsmStore> {
        LsmStore::open_with_dir(Arc::new(MemDir::new()), opts)
    }

    /// Open (or create) a store under `dir` on the real filesystem.
    pub fn open_dir<P: AsRef<Path>>(dir: P, opts: LsmOptions) -> StoreResult<LsmStore> {
        LsmStore::open_with_dir(Arc::new(FileDir::open(dir)?), opts)
    }

    /// Open over an arbitrary [`StorageDir`] — the fault-injection entry
    /// point: wrap a [`MemDir`] in a
    /// [`FaultyDir`](crate::vfs::FaultyDir) to script I/O failures and
    /// crashes against every file the engine touches.
    pub fn open_with_dir(dir: Arc<dyn StorageDir>, opts: LsmOptions) -> StoreResult<LsmStore> {
        // 1. Manifest: adopt the last intact run-set record. Legacy
        //    (pre-tiering) records come back with every run at level 0;
        //    the next compaction re-tiers them.
        let manifest = Manifest::open(dir.open(MANIFEST_FILE)?)?;

        // 2. Load every referenced run. These were synced before the
        //    manifest record naming them, so failures here are real
        //    corruption, not crash debris. v1 run files load fine (their
        //    bloom + sparse index are rebuilt in memory) and get rewritten
        //    as v2 by the next compaction that consumes them.
        let mut runs = Vec::with_capacity(manifest.runs.len());
        for (id, level) in &manifest.runs {
            let mut storage = dir.open(&Run::file_name(*id))?;
            runs.push(LeveledRun {
                run: Arc::new(Run::load(*id, storage.as_mut())?),
                level: *level,
            });
        }

        // 3. Orphan scan — the recovery blind spot the fault harness
        //    exposes: a crash mid-seal or mid-compaction leaves run files
        //    the manifest never committed. They must be deleted (never
        //    resurrected), and their ids must never be re-allocated.
        let live: BTreeSet<u64> = manifest.runs.iter().map(|(id, _)| *id).collect();
        let mut next_run_id = manifest.next_run_id;
        let mut orphans = 0u64;
        for name in dir.list()? {
            if let Some(id) = Run::parse_file_name(&name) {
                if id >= next_run_id {
                    next_run_id = id + 1;
                }
                if !live.contains(&id) {
                    dir.remove(&name)?;
                    orphans += 1;
                }
            }
        }

        // 4. WAL replay into a fresh memtable (repairs torn tails).
        let mut wal = Wal::with_storage(dir.open(WAL_FILE)?)?;
        let replay = wal.replay()?;
        let mut state = LsmState {
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            runs,
            epoch: manifest.epoch,
        };
        for (_lsn, rec) in &replay.records {
            match rec {
                WalRecord::Put { key, value } => {
                    state.memtable_insert(key, Some(value.clone()));
                }
                WalRecord::Delete { key } => state.memtable_insert(key, None),
                WalRecord::Checkpoint => {}
            }
        }

        let recovered = LsmStats {
            recovered_records: replay.records.len() as u64,
            recovered_torn_tail: replay.torn_tail || manifest.torn_tail,
            recovered_repaired_bytes: replay.repaired_bytes + manifest.repaired_bytes,
            recovered_orphan_runs: orphans,
            ..LsmStats::default()
        };
        let mut manifest = manifest;
        manifest.next_run_id = next_run_id;
        let shared = Arc::new(LsmShared {
            state: RwLock::new(state),
            manifest: Mutex::new(manifest),
            metrics: RwLock::new(LsmMetrics::default()),
            compactions: AtomicU64::new(0),
            wake: Wake {
                flag: Mutex::new(WakeFlag::default()),
                cond: Condvar::new(),
            },
            dir,
        });
        let compactor = if opts.background_compaction {
            let thread_shared = Arc::clone(&shared);
            let min_runs = opts.compact_min_runs;
            Some(std::thread::spawn(move || {
                compactor_loop(&thread_shared, min_runs);
            }))
        } else {
            None
        };
        Ok(LsmStore {
            shared,
            wal,
            opts,
            stats: StatCells::default(),
            recovered,
            compactor,
        })
    }

    /// Register this store with `registry` (`store.lsm.*`, `store.wal.*`,
    /// recovery counters under `store.recovery.*`).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.wal.attach_registry(registry);
        let (runs, levels, memtable_bytes) = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            (
                state.runs.len() as i64,
                level_count(&state.runs) as i64,
                state.memtable_bytes as i64,
            )
        };
        {
            let mut m = self
                .shared
                .metrics
                .write()
                .unwrap_or_else(|e| e.into_inner());
            *m = LsmMetrics::new(registry);
            m.runs.set(runs);
            m.levels.set(levels);
            m.memtable_bytes.set(memtable_bytes);
        }
        registry
            .counter("store.recovery.replayed_records")
            .add(self.recovered.recovered_records);
        if self.recovered.recovered_torn_tail {
            registry.counter("store.recovery.torn_tails").inc();
        }
        registry
            .counter("store.recovery.repaired_bytes")
            .add(self.recovered.recovered_repaired_bytes);
        registry
            .counter("store.recovery.orphan_runs")
            .add(self.recovered.recovered_orphan_runs);
    }

    fn append_wal(&mut self, record: &WalRecord) -> StoreResult<()> {
        self.wal.append(record)?;
        if self.opts.sync_every_append {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// Upsert. Once the WAL append returns, the write is acked: a
    /// budget-triggered seal that fails afterwards must not retract the
    /// ack, so its error is deferred — counted in `store.lsm.seal.errors`
    /// and retried on the next trigger or explicit [`LsmStore::seal`].
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> StoreResult<()> {
        self.append_wal(&WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        let bytes = {
            let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
            state.memtable_insert(key, Some(value.to_vec()));
            state.memtable_bytes
        };
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        {
            let m = self
                .shared
                .metrics
                .read()
                .unwrap_or_else(|e| e.into_inner());
            m.puts.inc();
            m.memtable_bytes.set(bytes as i64);
        }
        if bytes > self.opts.memtable_bytes {
            self.seal_deferred();
        }
        Ok(())
    }

    /// Delete (writes a tombstone; absent keys are fine). Seal-error
    /// deferral works exactly as in [`LsmStore::put`].
    pub fn delete(&mut self, key: &[u8]) -> StoreResult<()> {
        self.append_wal(&WalRecord::Delete { key: key.to_vec() })?;
        let bytes = {
            let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
            state.memtable_insert(key, None);
            state.memtable_bytes
        };
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        {
            let m = self
                .shared
                .metrics
                .read()
                .unwrap_or_else(|e| e.into_inner());
            m.deletes.inc();
            m.memtable_bytes.set(bytes as i64);
        }
        if bytes > self.opts.memtable_bytes {
            self.seal_deferred();
        }
        Ok(())
    }

    /// Budget-triggered seal: the covered writes are already acked (WAL +
    /// memtable), so a failure here only defers the seal — the memtable
    /// keeps growing past its budget until a later seal succeeds.
    fn seal_deferred(&mut self) {
        if self.seal().is_err() {
            self.stats.seal_errors.fetch_add(1, Ordering::Relaxed);
            let m = self
                .shared
                .metrics
                .read()
                .unwrap_or_else(|e| e.into_inner());
            m.seal_errors.inc();
        }
    }

    /// Point lookup: memtable first, then runs newest-to-oldest — but
    /// only runs whose key-range bounds and bloom filter both admit the
    /// key are consulted, and a consulted run decodes one sparse-index
    /// block. The consulted count is the read amplification recorded in
    /// `store.lsm.read.amplification`.
    pub fn get(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let _trace = memex_obs::trace::span("store.lsm.get");
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let out = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            lookup(&state.memtable, &state.runs, key)
        };
        {
            let m = self
                .shared
                .metrics
                .read()
                .unwrap_or_else(|e| e.into_inner());
            m.gets.inc();
            m.read_amp.record(out.consulted);
            m.bloom_hit.add(out.bloom_hit);
            m.bloom_skip.add(out.bloom_skip);
            m.bloom_fp.add(out.bloom_fp);
        }
        Ok(out.value)
    }

    /// Merged range iteration over the live state (memtable shadows
    /// runs; newest run shadows older).
    pub fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> StoreResult<()> {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        merged_for_each(&state.memtable, &state.runs, start, end, f);
        Ok(())
    }

    /// Collect every `(key, value)` whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(Bound::Included(prefix), Bound::Unbounded, &mut |k, v| {
            if !k.starts_with(prefix) {
                return false;
            }
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Collect a bounded range.
    pub fn scan(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(start, end, &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Make every acked record durable (WAL fsync).
    pub fn sync(&mut self) -> StoreResult<()> {
        self.wal.sync()
    }

    /// Open an MVCC snapshot: one brief read lock to clone the (bounded)
    /// memtable and pin the immutable run set, then every read on the
    /// returned handle is lock-free. Ingest, seals and compactions after
    /// this point are invisible to the snapshot.
    pub fn snapshot(&self) -> LsmSnapshot {
        let (memtable, runs, epoch) = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            (state.memtable.clone(), state.runs.clone(), state.epoch)
        };
        {
            let m = self
                .shared
                .metrics
                .read()
                .unwrap_or_else(|e| e.into_inner());
            m.snapshots.inc();
        }
        LsmSnapshot {
            memtable,
            runs,
            epoch,
        }
    }

    /// The run-set epoch readers would pin right now.
    pub fn epoch(&self) -> u64 {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        state.epoch
    }

    /// Live run count.
    pub fn run_count(&self) -> usize {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        state.runs.len()
    }

    /// Live `(run id, level)` pairs, newest first (test observability).
    #[doc(hidden)]
    pub fn run_levels(&self) -> Vec<(u64, u32)> {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        state.runs.iter().map(|r| (r.run.id, r.level)).collect()
    }

    /// On-disk format version of each live run, newest first (tests the
    /// v1→v2 upgrade path).
    #[doc(hidden)]
    pub fn run_formats(&self) -> Vec<u32> {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        state.runs.iter().map(|r| r.run.format()).collect()
    }

    /// Seal the memtable into an immutable run and truncate the WAL. See
    /// the module docs for why each step orders before the next. An empty
    /// memtable still checkpoints the WAL (everything acked is already in
    /// runs, so dropping the log is safe).
    pub fn seal(&mut self) -> StoreResult<()> {
        let _trace = memex_obs::trace::span("store.lsm.seal");
        let started = Instant::now();
        // Make the whole log durable before anything derived from it is:
        // the run must never get ahead of the durable WAL, or a crash
        // could replay a stale prefix over newer run data.
        self.wal.sync()?;
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            state
                .memtable
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if entries.is_empty() {
            return self.checkpoint_wal();
        }
        let (run_count, levels, ready) = {
            // The manifest mutex serializes run-set transitions against
            // the compactor; the run list cannot change until released.
            let mut manifest = self
                .shared
                .manifest
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let id = manifest.next_run_id;
            let name = Run::file_name(id);
            let run = {
                let mut storage = self.shared.dir.open(&name)?;
                match Run::write(id, entries, storage.as_mut()) {
                    Ok(run) => run,
                    Err(e) => {
                        // A partial file may remain: delete it if we can;
                        // otherwise the orphan scan reaps it at next open.
                        let _ = self.shared.dir.remove(&name);
                        return Err(e);
                    }
                }
            };
            let (epoch, list) = {
                let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
                let list: Vec<(u64, u32)> = std::iter::once((id, 0))
                    .chain(state.runs.iter().map(|r| (r.run.id, r.level)))
                    .collect();
                (state.epoch + 1, list)
            };
            // On failure, keep the run file: the append may have staged
            // its record before the failure, and a crash can still land
            // those bytes durably. If the record lands, the (fully
            // synced) run is live and must exist; if it does not, the
            // orphan scan reaps the file at the next open. Removing it
            // here would let a landed record point at nothing.
            manifest.append(epoch, id + 1, &list)?;
            // Committed: install in memory. From here on failure may only
            // leave the WAL un-truncated, which replays idempotently.
            let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
            state.runs.insert(
                0,
                LeveledRun {
                    run: Arc::new(run),
                    level: 0,
                },
            );
            state.memtable.clear();
            state.memtable_bytes = 0;
            state.epoch = epoch;
            (
                state.runs.len(),
                level_count(&state.runs),
                tier_ready(&state.runs, self.opts.compact_min_runs),
            )
        };
        self.stats.seals.fetch_add(1, Ordering::Relaxed);
        {
            let m = self
                .shared
                .metrics
                .read()
                .unwrap_or_else(|e| e.into_inner());
            m.seals.inc();
            m.memtable_bytes.set(0);
            m.runs.set(run_count as i64);
            m.levels.set(levels as i64);
            m.seal_latency.record(elapsed_ns(started));
        }
        if ready {
            self.wake_compactor();
        }
        self.checkpoint_wal()
    }

    /// Truncate the WAL and mark the checkpoint (the sealed runs now
    /// carry everything the log carried).
    fn checkpoint_wal(&mut self) -> StoreResult<()> {
        self.wal.truncate()?;
        self.wal.append(&WalRecord::Checkpoint)?;
        self.wal.sync()
    }

    /// Compact inline until nothing is left to merge, finishing with a
    /// bottom merge of the whole stack (deterministic alternative to the
    /// background demon; used by crash tests). Returns whether any merge
    /// happened.
    pub fn compact_now(&mut self) -> StoreResult<bool> {
        let mut any = false;
        while compact_once(&self.shared, 2, false)? {
            any = true;
        }
        if compact_once(&self.shared, 2, true)? {
            any = true;
        }
        Ok(any)
    }

    /// Run exactly one tier-compaction pass (no full merge): the
    /// fine-grained hook the tiering tests schedule crashes around.
    #[doc(hidden)]
    pub fn compact_tier_now(&mut self) -> StoreResult<bool> {
        compact_once(&self.shared, 2, false)
    }

    /// Seal `entries` directly as a **v1-format** level-0 run, bypassing
    /// the memtable. Test-only: seeds stores with legacy run files so the
    /// crash harness can prove the v1→v2 upgrade path.
    #[doc(hidden)]
    pub fn install_v1_run(&mut self, entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> StoreResult<u64> {
        let id = {
            let mut manifest = self
                .shared
                .manifest
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let id = manifest.next_run_id;
            manifest.next_run_id = id + 1;
            id
        };
        let name = Run::file_name(id);
        {
            let mut storage = self.shared.dir.open(&name)?;
            Run::write_v1(id, entries, storage.as_mut())?;
        }
        let run = {
            let mut storage = self.shared.dir.open(&name)?;
            Run::load(id, storage.as_mut())?
        };
        let mut manifest = self
            .shared
            .manifest
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let (epoch, list) = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            let list: Vec<(u64, u32)> = std::iter::once((id, 0))
                .chain(state.runs.iter().map(|r| (r.run.id, r.level)))
                .collect();
            (state.epoch + 1, list)
        };
        let next_id = manifest.next_run_id.max(id + 1);
        manifest.append(epoch, next_id, &list)?;
        let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
        state.runs.insert(
            0,
            LeveledRun {
                run: Arc::new(run),
                level: 0,
            },
        );
        state.epoch = epoch;
        Ok(id)
    }

    fn wake_compactor(&self) {
        if self.compactor.is_none() {
            return;
        }
        {
            let mut flag = self
                .shared
                .wake
                .flag
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            flag.work = true;
        }
        self.shared.wake.cond.notify_all();
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> LsmStats {
        LsmStats {
            puts: self.stats.puts.load(Ordering::Relaxed),
            deletes: self.stats.deletes.load(Ordering::Relaxed),
            gets: self.stats.gets.load(Ordering::Relaxed),
            seals: self.stats.seals.load(Ordering::Relaxed),
            seal_errors: self.stats.seal_errors.load(Ordering::Relaxed),
            compactions: self.shared.compactions.load(Ordering::Relaxed),
            ..self.recovered
        }
    }

    /// Expose the WAL for fault-injection in recovery experiments.
    #[doc(hidden)]
    pub fn wal_mut(&mut self) -> &mut Wal {
        &mut self.wal
    }
}

impl Drop for LsmStore {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.take() {
            {
                let mut flag = self
                    .shared
                    .wake
                    .flag
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                flag.shutdown = true;
            }
            self.shared.wake.cond.notify_all();
            let _ = handle.join();
        }
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Background compactor: waits for a wake, then runs tier merges until no
/// tier qualifies. Errors are counted and retried at the next wake — the
/// demon itself never dies and never panics.
fn compactor_loop(shared: &Arc<LsmShared>, min_runs: usize) {
    loop {
        {
            let mut flag = shared.wake.flag.lock().unwrap_or_else(|e| e.into_inner());
            while !flag.work && !flag.shutdown {
                flag = shared
                    .wake
                    .cond
                    .wait(flag)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if flag.shutdown {
                return;
            }
            flag.work = false;
        }
        loop {
            match compact_once(shared, min_runs, false) {
                Ok(true) => continue,
                Ok(false) => break,
                Err(_) => {
                    let m = shared.metrics.read().unwrap_or_else(|e| e.into_inner());
                    m.compact_errors.inc();
                    break;
                }
            }
        }
    }
}

/// A compaction decision: merge `runs[start..end)` (a contiguous span)
/// into one run at `out_level`.
struct CompactPlan {
    victims: Vec<LeveledRun>,
    start: usize,
    end: usize,
    out_level: u32,
    /// The merge reaches the oldest run: nothing below can shadow, so
    /// tombstones may be dropped.
    bottom: bool,
    old_epoch: u64,
    id: u64,
}

/// Pick the first (youngest) tier — maximal contiguous same-level span —
/// holding at least `min_runs.max(2)` runs. Returns `(start, end,
/// out_level)`; the output lands one level deeper than its inputs.
fn select_tier(runs: &[LeveledRun], min_runs: usize) -> Option<(usize, usize, u32)> {
    let threshold = min_runs.max(2);
    let mut span_start = 0usize;
    let mut span_level: Option<u32> = None;
    for (i, r) in runs.iter().enumerate() {
        match span_level {
            Some(level) if level == r.level => {}
            _ => {
                if let Some(level) = span_level {
                    if i - span_start >= threshold {
                        return Some((span_start, i, level + 1));
                    }
                }
                span_level = Some(r.level);
                span_start = i;
            }
        }
    }
    if let Some(level) = span_level {
        if runs.len() - span_start >= threshold {
            return Some((span_start, runs.len(), level + 1));
        }
    }
    None
}

/// Pick the whole stack (a full merge), regardless of levels. The output
/// lands at the deepest input level (at least 1, so it never masquerades
/// as a fresh seal).
fn select_all(runs: &[LeveledRun]) -> Option<(usize, usize, u32)> {
    if runs.len() < 2 {
        return None;
    }
    let out_level = runs.iter().map(|r| r.level).max().unwrap_or(0).max(1);
    Some((0, runs.len(), out_level))
}

/// Merge one tier (or, with `full`, the whole stack) into one run a level
/// deeper. The merge itself happens on `Arc` clones with no lock held
/// (readers and the writer proceed); the manifest mutex is taken twice,
/// briefly: once to pick the victim span and reserve a run id, and once
/// to commit the transition (the state write lock is held just long
/// enough to splice the list). If the epoch moved between the two — a
/// seal or another compaction landed — the merged output is stale: the
/// orphan file is removed and the caller retries against the new run set.
/// Tombstones are dropped **only** when the span reaches the bottom of
/// the stack; anywhere else they must survive to keep shadowing deleted
/// keys in older runs. Snapshots holding the old runs keep them alive;
/// their files are deleted once the manifest stops referencing them
/// (failed deletions become orphans for the next open).
fn compact_once(shared: &Arc<LsmShared>, min_runs: usize, full: bool) -> StoreResult<bool> {
    let _trace = memex_obs::trace::span("store.lsm.compact");
    let started = Instant::now();
    let plan = {
        let mut manifest = shared.manifest.lock().unwrap_or_else(|e| e.into_inner());
        let state = shared.state.read().unwrap_or_else(|e| e.into_inner());
        let selected = if full {
            select_all(&state.runs)
        } else {
            select_tier(&state.runs, min_runs)
        };
        let Some((start, end, out_level)) = selected else {
            return Ok(false);
        };
        // Reserve the run id in memory only: a concurrent seal allocates
        // past it, and the commit append persists the high-water mark.
        // A reservation abandoned by abort or crash is never densely
        // required — the orphan scan owns unreferenced files.
        let id = manifest.next_run_id;
        manifest.next_run_id = id + 1;
        CompactPlan {
            victims: state
                .runs
                .get(start..end)
                .into_iter()
                .flatten()
                .cloned()
                .collect(),
            start,
            end,
            out_level,
            bottom: end == state.runs.len(),
            old_epoch: state.epoch,
            id,
        }
    };
    // Oldest victim first so newer entries overwrite. No lock is held for
    // the merge or the run write: this is the bulk of the work, and
    // sealers must not stall behind it.
    let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
    for victim in plan.victims.iter().rev() {
        for (k, v) in victim.run.iter() {
            merged.insert(k.to_vec(), v.map(|x| x.to_vec()));
        }
    }
    // Tombstones shadow matching keys in runs *below* the merged span;
    // only a merge that reaches the bottom of the stack may drop them.
    let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = if plan.bottom {
        merged.into_iter().filter(|(_, v)| v.is_some()).collect()
    } else {
        merged.into_iter().collect()
    };
    let input_bytes: u64 = plan.victims.iter().map(|r| r.run.bytes).sum();
    let name = Run::file_name(plan.id);
    let run = {
        let mut storage = shared.dir.open(&name)?;
        match Run::write(plan.id, entries, storage.as_mut()) {
            Ok(run) => run,
            Err(e) => {
                let _ = shared.dir.remove(&name);
                return Err(e);
            }
        }
    };
    let mut manifest = shared.manifest.lock().unwrap_or_else(|e| e.into_inner());
    let new_runs: Vec<LeveledRun> = {
        let state = shared.state.read().unwrap_or_else(|e| e.into_inner());
        if state.epoch != plan.old_epoch {
            // The run set changed under us (seal or concurrent compact):
            // the span indices no longer describe it, and installing the
            // merge could drop newcomers. Abandon this output and ask the
            // caller to retry against the new set. Never reached
            // single-threaded (compact_now in crash tests).
            drop(state);
            drop(manifest);
            let _ = shared.dir.remove(&name);
            return Ok(true);
        }
        // Epoch unchanged ⇒ the list is exactly the one the plan indexed.
        let mut list = Vec::with_capacity(state.runs.len() + 1 - plan.victims.len());
        list.extend(state.runs.get(..plan.start).into_iter().flatten().cloned());
        list.push(LeveledRun {
            run: Arc::new(run),
            level: plan.out_level,
        });
        list.extend(state.runs.get(plan.end..).into_iter().flatten().cloned());
        list
    };
    let epoch = plan.old_epoch + 1;
    // On failure, keep the merged run file — same reasoning as in `seal`:
    // the staged manifest record may still land at a crash. Either the
    // record lands (run live, victims become orphans) or it does not
    // (this file becomes the orphan) — recovery reconciles both. The
    // persisted next_run_id must cover ids a concurrent seal may have
    // taken after our reservation.
    let next_id = manifest.next_run_id.max(plan.id + 1);
    let record: Vec<(u64, u32)> = new_runs.iter().map(|r| (r.run.id, r.level)).collect();
    manifest.append(epoch, next_id, &record)?;
    let (run_count, levels) = {
        let mut state = shared.state.write().unwrap_or_else(|e| e.into_inner());
        state.runs = new_runs;
        state.epoch = epoch;
        (state.runs.len(), level_count(&state.runs))
    };
    drop(manifest);
    for victim in &plan.victims {
        let _ = shared.dir.remove(&Run::file_name(victim.run.id));
    }
    shared.compactions.fetch_add(1, Ordering::Relaxed);
    {
        let m = shared.metrics.read().unwrap_or_else(|e| e.into_inner());
        m.compactions.inc();
        m.compact_bytes.add(input_bytes);
        m.compact_latency.record(elapsed_ns(started));
        m.runs.set(run_count as i64);
        m.levels.set(levels as i64);
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Merged reads
// ---------------------------------------------------------------------------

/// What one point lookup did: the value (if any), how many runs it
/// consulted (read amplification) and how each run's bloom classified it.
struct LookupOutcome {
    value: Option<Vec<u8>>,
    consulted: u64,
    bloom_hit: u64,
    bloom_skip: u64,
    bloom_fp: u64,
}

/// Point lookup over a memtable + run stack. Runs whose bloom rejects the
/// key are skipped outright; consulted runs resolve through their sparse
/// index. A tombstone hit stops the walk — older runs must not be asked.
fn lookup(
    memtable: &BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    runs: &[LeveledRun],
    key: &[u8],
) -> LookupOutcome {
    let mut out = LookupOutcome {
        value: None,
        consulted: 0,
        bloom_hit: 0,
        bloom_skip: 0,
        bloom_fp: 0,
    };
    if let Some(v) = memtable.get(key) {
        out.value = v.clone();
        return out;
    }
    // One key hash for the whole stack; each run's bloom mixes its own
    // seed into it.
    let hash = run::key_hash(key);
    for entry in runs {
        match entry.run.probe_hashed(key, hash) {
            Probe::Skip => out.bloom_skip += 1,
            Probe::Miss => {
                out.consulted += 1;
                out.bloom_fp += 1;
            }
            Probe::Hit(v) => {
                out.consulted += 1;
                out.bloom_hit += 1;
                out.value = v.map(|x| x.to_vec());
                return out;
            }
        }
    }
    out
}

/// True when the range can contain nothing (guards the `BTreeMap::range`
/// panic conditions as well).
fn empty_range(start: &Bound<&[u8]>, end: &Bound<&[u8]>) -> bool {
    match (start, end) {
        (Bound::Included(s), Bound::Included(e)) => s > e,
        (Bound::Included(s), Bound::Excluded(e))
        | (Bound::Excluded(s), Bound::Included(e))
        | (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
        _ => false,
    }
}

fn within_end(key: &[u8], end: &Bound<&[u8]>) -> bool {
    match end {
        Bound::Included(e) => key <= *e,
        Bound::Excluded(e) => key < *e,
        Bound::Unbounded => true,
    }
}

type MergeIter<'a> = Box<dyn Iterator<Item = (&'a [u8], Option<&'a [u8]>)> + 'a>;
type MergeSource<'a> = Peekable<MergeIter<'a>>;

/// K-way merge over the memtable and runs, youngest source wins per key,
/// tombstones suppressed. `f` returning `false` stops the iteration.
/// Run entries stream straight out of their resident encoded blocks.
fn merged_for_each(
    memtable: &BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    runs: &[LeveledRun],
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
) {
    if empty_range(&start, &end) {
        return;
    }
    // Sources ordered youngest-first: memtable, then runs newest-first.
    let mut sources: Vec<MergeSource<'_>> = Vec::with_capacity(runs.len() + 1);
    let mem_iter: MergeIter<'_> = Box::new(
        memtable
            .range::<[u8], _>((start, end))
            .map(|(k, v)| (k.as_slice(), v.as_deref())),
    );
    sources.push(mem_iter.peekable());
    for entry in runs {
        let it: MergeIter<'_> = match start {
            Bound::Included(k) => Box::new(
                entry
                    .run
                    .iter_from(k)
                    .take_while(move |(key, _)| within_end(key, &end)),
            ),
            Bound::Excluded(k) => Box::new(
                entry
                    .run
                    .iter_from(k)
                    .skip_while(move |(key, _)| *key == k)
                    .take_while(move |(key, _)| within_end(key, &end)),
            ),
            Bound::Unbounded => Box::new(
                entry
                    .run
                    .iter()
                    .take_while(move |(key, _)| within_end(key, &end)),
            ),
        };
        sources.push(it.peekable());
    }
    loop {
        // Find the smallest key any source is looking at.
        let mut min_key: Option<Vec<u8>> = None;
        for source in sources.iter_mut() {
            if let Some((k, _)) = source.peek() {
                match &min_key {
                    Some(m) if *k >= m.as_slice() => {}
                    _ => min_key = Some(k.to_vec()),
                }
            }
        }
        let Some(key) = min_key else {
            return;
        };
        // Pop every source at that key; the youngest (first) wins.
        let mut chosen: Option<Option<Vec<u8>>> = None;
        for source in sources.iter_mut() {
            if let Some((k, v)) = source.peek() {
                if *k == key.as_slice() {
                    if chosen.is_none() {
                        chosen = Some(v.map(|x| x.to_vec()));
                    }
                    source.next();
                }
            }
        }
        if let Some(Some(value)) = chosen {
            if !f(&key, &value) {
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A pinned point-in-time view: the memtable as of the snapshot plus
/// `Arc`s on the then-live immutable runs. Reads take no lock at all.
pub struct LsmSnapshot {
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    runs: Vec<LeveledRun>,
    epoch: u64,
}

impl LsmSnapshot {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        lookup(&self.memtable, &self.runs, key).value
    }

    pub fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) {
        merged_for_each(&self.memtable, &self.runs, start, end, f);
    }
}

impl SnapshotView for LsmSnapshot {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        LsmSnapshot::get(self, key)
    }

    fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) {
        LsmSnapshot::for_each_range(self, start, end, f);
    }
}

// ---------------------------------------------------------------------------
// Engine impl
// ---------------------------------------------------------------------------

impl Engine for LsmStore {
    fn kind(&self) -> EngineKind {
        EngineKind::Lsm
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> StoreResult<()> {
        LsmStore::put(self, key, value)
    }

    fn delete(&mut self, key: &[u8]) -> StoreResult<()> {
        LsmStore::delete(self, key)
    }

    fn get(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        LsmStore::get(self, key)
    }

    fn scan(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        LsmStore::scan(self, start, end)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        LsmStore::scan_prefix(self, prefix)
    }

    fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> StoreResult<()> {
        LsmStore::for_each_range(self, start, end, f)
    }

    fn sync(&mut self) -> StoreResult<()> {
        LsmStore::sync(self)
    }

    fn checkpoint(&mut self) -> StoreResult<()> {
        self.seal()
    }

    fn snapshot(&self) -> StoreResult<Box<dyn SnapshotView>> {
        Ok(Box::new(LsmStore::snapshot(self)))
    }

    fn epoch(&self) -> u64 {
        LsmStore::epoch(self)
    }

    fn attach_registry(&mut self, registry: &MetricsRegistry) {
        LsmStore::attach_registry(self, registry);
    }

    fn check(&mut self) -> StoreResult<()> {
        // Run files verify their checksum and ordering at load; the live
        // invariants to check are the tier shape: levels non-decreasing
        // newest-to-oldest, run ids globally unique, and ids strictly
        // descending within each level (newer runs allocate higher ids).
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut prev_level: Option<u32> = None;
        let mut prev_id_in_level: Option<u64> = None;
        for entry in &state.runs {
            if let Some(level) = prev_level {
                if entry.level < level {
                    return Err(crate::error::StoreError::Corrupt(format!(
                        "level order violated: level {} after level {}",
                        entry.level, level
                    )));
                }
                if entry.level > level {
                    prev_id_in_level = None;
                }
            }
            if !seen.insert(entry.run.id) {
                return Err(crate::error::StoreError::Corrupt(format!(
                    "duplicate run id {}",
                    entry.run.id
                )));
            }
            if let Some(p) = prev_id_in_level {
                if entry.run.id >= p {
                    return Err(crate::error::StoreError::Corrupt(format!(
                        "run order violated: {} after {} in level {}",
                        entry.run.id, p, entry.level
                    )));
                }
            }
            prev_level = Some(entry.level);
            prev_id_in_level = Some(entry.run.id);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> LsmOptions {
        LsmOptions {
            memtable_bytes: 1 << 30, // never auto-seal
            compact_min_runs: 64,    // never auto-compact
            background_compaction: false,
            sync_every_append: false,
        }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(b"1".to_vec()));
        s.delete(b"a").unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn seal_moves_memtable_into_a_run_and_reads_merge() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"a", b"old").unwrap();
        s.put(b"b", b"2").unwrap();
        s.seal().unwrap();
        assert_eq!(s.run_count(), 1);
        s.put(b"a", b"new").unwrap();
        s.delete(b"b").unwrap();
        assert_eq!(
            s.get(b"a").unwrap(),
            Some(b"new".to_vec()),
            "memtable shadows run"
        );
        assert_eq!(s.get(b"b").unwrap(), None, "tombstone shadows run");
        let all = s.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(all, vec![(b"a".to_vec(), b"new".to_vec())]);
    }

    #[test]
    fn compaction_merges_runs_and_drops_tombstones() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        s.seal().unwrap();
        s.delete(b"a").unwrap();
        s.put(b"c", b"3").unwrap();
        s.seal().unwrap();
        assert_eq!(s.run_count(), 2);
        assert!(s.compact_now().unwrap());
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(s.get(b"c").unwrap(), Some(b"3".to_vec()));
        let state = s.shared.state.read().unwrap();
        let merged = state.runs.first().unwrap();
        assert_eq!(
            merged.run.entry_count(),
            2,
            "tombstone dropped by bottom merge"
        );
        assert_eq!(s.stats().compactions, 1, "compaction counted");
    }

    #[test]
    fn tier_compaction_keeps_tombstones_above_older_runs() {
        // The tombstone-resurrection regression: delete a key whose live
        // value sits in an older (deeper) run, compact only the young
        // tier, and the key must stay deleted. The unguarded full-merge
        // logic dropped the tombstone here and resurrected `k`.
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"k", b"live").unwrap();
        s.put(b"f1", b"x").unwrap();
        s.seal().unwrap();
        s.put(b"f2", b"x").unwrap();
        s.seal().unwrap();
        // Bottom merge: `k` now lives in a level-1 run.
        assert!(s.compact_tier_now().unwrap());
        assert_eq!(
            s.run_levels().iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![1]
        );
        s.delete(b"k").unwrap();
        s.put(b"f3", b"x").unwrap();
        s.seal().unwrap();
        s.put(b"f4", b"x").unwrap();
        s.seal().unwrap();
        // Merge ONLY the two young level-0 runs: not a bottom merge, so
        // the tombstone must survive into the merged run.
        assert!(s.compact_tier_now().unwrap());
        let levels: Vec<u32> = s.run_levels().iter().map(|(_, l)| *l).collect();
        assert_eq!(levels, vec![1, 1], "young tier merged above the old run");
        assert_eq!(
            s.get(b"k").unwrap(),
            None,
            "tier merge must not resurrect a deleted key"
        );
        Engine::check(&mut s).unwrap();
        // The final bottom merge may (and does) drop the tombstone.
        assert!(s.compact_now().unwrap());
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.get(b"k").unwrap(), None);
    }

    #[test]
    fn tiers_deepen_and_invariants_hold() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        for round in 0..4u32 {
            s.put(format!("key-{round}").as_bytes(), b"v").unwrap();
            s.seal().unwrap();
        }
        assert_eq!(
            s.run_levels().iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![0, 0, 0, 0]
        );
        // One tier pass merges the whole level-0 span (bottom ⇒ level 1).
        assert!(s.compact_tier_now().unwrap());
        assert_eq!(
            s.run_levels().iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![1]
        );
        for round in 4..6u32 {
            s.put(format!("key-{round}").as_bytes(), b"v").unwrap();
            s.seal().unwrap();
        }
        // The two fresh seals tier-merge in front of the old level-1 run.
        assert!(s.compact_tier_now().unwrap());
        assert_eq!(
            s.run_levels().iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![1, 1]
        );
        Engine::check(&mut s).unwrap();
        // Now the level-1 tier qualifies; merging it reaches the bottom.
        assert!(s.compact_tier_now().unwrap());
        assert_eq!(
            s.run_levels().iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![2]
        );
        Engine::check(&mut s).unwrap();
        for round in 0..6u32 {
            let k = format!("key-{round}");
            assert_eq!(s.get(k.as_bytes()).unwrap(), Some(b"v".to_vec()));
        }
    }

    #[test]
    fn bloom_counters_classify_lookups() {
        let registry = MetricsRegistry::new();
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.attach_registry(&registry);
        for i in 0..100u32 {
            s.put(format!("key-{i:03}").as_bytes(), b"v").unwrap();
        }
        s.seal().unwrap();
        for i in 0..100u32 {
            assert_eq!(
                s.get(format!("key-{i:03}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
        for i in 0..100u32 {
            assert_eq!(s.get(format!("absent-{i:03}").as_bytes()).unwrap(), None);
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("store.lsm.bloom.hit"),
            100,
            "every present key hits"
        );
        assert!(
            snap.counter("store.lsm.bloom.skip") > 80,
            "most absent keys are bloom-skipped (got {})",
            snap.counter("store.lsm.bloom.skip")
        );
        assert_eq!(
            snap.counter("store.lsm.bloom.skip") + snap.counter("store.lsm.bloom.fp"),
            100,
            "absent keys either skip or false-positive"
        );
        assert_eq!(snap.gauge("store.lsm.levels"), 1);
    }

    #[test]
    fn snapshot_pins_pre_burst_state_across_seal_and_compaction() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"k1", b"v1").unwrap();
        s.put(b"k2", b"v2").unwrap();
        let snap = s.snapshot();
        let epoch = SnapshotView::epoch(&snap);
        // Burst: overwrite, delete, seal twice, compact.
        s.put(b"k1", b"changed").unwrap();
        s.delete(b"k2").unwrap();
        s.seal().unwrap();
        s.put(b"k3", b"v3").unwrap();
        s.seal().unwrap();
        s.compact_now().unwrap();
        // The snapshot still reads the exact pre-burst state.
        assert_eq!(snap.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(snap.get(b"k2"), Some(b"v2".to_vec()));
        assert_eq!(snap.get(b"k3"), None);
        let mut seen = Vec::new();
        snap.for_each_range(Bound::Unbounded, Bound::Unbounded, &mut |k, v| {
            seen.push((k.to_vec(), v.to_vec()));
            true
        });
        assert_eq!(
            seen,
            vec![
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k2".to_vec(), b"v2".to_vec())
            ]
        );
        assert!(s.epoch() > epoch, "live epoch moved on");
    }

    #[test]
    fn reopen_recovers_runs_and_wal() {
        let dir: Arc<MemDir> = Arc::new(MemDir::new());
        {
            let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
            s.put(b"sealed", b"1").unwrap();
            s.seal().unwrap();
            s.put(b"walled", b"2").unwrap();
            s.sync().unwrap();
        }
        let s = LsmStore::open_with_dir(dir, tiny_opts()).unwrap();
        assert_eq!(s.get(b"sealed").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.get(b"walled").unwrap(), Some(b"2".to_vec()));
        assert_eq!(
            s.stats().recovered_records,
            1,
            "only the unsealed op replays"
        );
    }

    #[test]
    fn reopen_preserves_levels_and_v1_runs_upgrade_on_compaction() {
        let dir: Arc<MemDir> = Arc::new(MemDir::new());
        {
            let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
            s.install_v1_run(&[(b"legacy".to_vec(), Some(b"1".to_vec()))])
                .unwrap();
            s.put(b"fresh", b"2").unwrap();
            s.seal().unwrap();
            assert_eq!(s.run_formats(), vec![2, 1]);
        }
        let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
        assert_eq!(s.run_formats(), vec![2, 1], "v1 run survives reopen");
        assert_eq!(s.get(b"legacy").unwrap(), Some(b"1".to_vec()));
        let levels = s.run_levels();
        assert_eq!(
            levels.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![0, 0]
        );
        // The compaction that consumes the v1 run rewrites it as v2.
        assert!(s.compact_now().unwrap());
        assert_eq!(s.run_formats(), vec![2]);
        assert_eq!(s.get(b"legacy").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.get(b"fresh").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn orphan_runs_are_deleted_and_counted_never_resurrected() {
        let dir: Arc<MemDir> = Arc::new(MemDir::new());
        {
            let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
            s.put(b"a", b"1").unwrap();
            s.seal().unwrap();
        }
        // Fake a crash mid-seal: a run file the manifest never committed.
        {
            let mut orphan = dir.open(&Run::file_name(99)).unwrap();
            let entries = vec![(b"ghost".to_vec(), Some(b"boo".to_vec()))];
            Run::write(99, entries, orphan.as_mut()).unwrap();
        }
        let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
        assert_eq!(s.stats().recovered_orphan_runs, 1);
        assert_eq!(
            s.get(b"ghost").unwrap(),
            None,
            "orphan data must not resurrect"
        );
        assert!(
            !dir.exists(&Run::file_name(99)).unwrap(),
            "orphan file deleted"
        );
        // Ids never reused: the next seal allocates past the orphan.
        s.put(b"b", b"2").unwrap();
        s.seal().unwrap();
        assert!(dir.exists(&Run::file_name(100)).unwrap());
    }

    #[test]
    fn background_compactor_kicks_in() {
        let opts = LsmOptions {
            memtable_bytes: 64,
            compact_min_runs: 2,
            background_compaction: true,
            sync_every_append: false,
        };
        let mut s = LsmStore::open_memory_opts(opts).unwrap();
        for i in 0..64u32 {
            let k = format!("key-{i:04}");
            s.put(k.as_bytes(), &[0u8; 40]).unwrap();
        }
        // Wait (bounded) for the demon to merge every ready tier.
        for _ in 0..200 {
            if s.run_count() <= 2 && !tier_ready(&s.shared.state.read().unwrap().runs, 2) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(
            !tier_ready(&s.shared.state.read().unwrap().runs, 2),
            "no tier should remain compactable"
        );
        for i in 0..64u32 {
            let k = format!("key-{i:04}");
            assert_eq!(s.get(k.as_bytes()).unwrap(), Some(vec![0u8; 40]));
        }
        Engine::check(&mut s).unwrap();
    }

    #[test]
    fn scan_prefix_and_ranges_merge_correctly() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"p/a", b"1").unwrap();
        s.put(b"p/b", b"2").unwrap();
        s.put(b"q/x", b"3").unwrap();
        s.seal().unwrap();
        s.put(b"p/b", b"2b").unwrap();
        s.put(b"p/c", b"4").unwrap();
        let got = s.scan_prefix(b"p/").unwrap();
        assert_eq!(
            got,
            vec![
                (b"p/a".to_vec(), b"1".to_vec()),
                (b"p/b".to_vec(), b"2b".to_vec()),
                (b"p/c".to_vec(), b"4".to_vec()),
            ]
        );
        let bounded = s
            .scan(
                Bound::Excluded(b"p/a".as_slice()),
                Bound::Included(b"p/c".as_slice()),
            )
            .unwrap();
        assert_eq!(bounded.len(), 2);
        assert!(s
            .scan(
                Bound::Included(b"z".as_slice()),
                Bound::Excluded(b"a".as_slice())
            )
            .unwrap()
            .is_empty());
    }
}
