//! # memex-store::lsm — log-structured MVCC engine
//!
//! The B+Tree engine ([`KvStore`](crate::kv::KvStore)) mutates pages in
//! place, so every reader shares a lock with the writer and a long scan
//! fights ingest. The archive workload the paper describes is the
//! opposite shape: browsers stream events in *continuously* while mining
//! demons read long-lived views. This module is the engine built for
//! that shape:
//!
//! * **Writes** land in a sorted in-memory memtable, logged through the
//!   same [`Wal`] the B+Tree uses (crash recovery replays it back).
//! * **Seal**: when the memtable outgrows its budget (or on an explicit
//!   checkpoint) it is written as one immutable sorted [`Run`] file on a
//!   [`StorageDir`], the [`Manifest`] records the new run set, and the
//!   WAL is truncated.
//! * **Compaction**: a background demon merges the run set into one run
//!   off-lock and swaps the new set in with a brief write-lock — readers
//!   and the writer never wait for the merge itself.
//! * **MVCC snapshots**: [`LsmSnapshot`] clones the (bounded) memtable
//!   and grabs `Arc`s on the immutable runs under one brief read lock;
//!   every read after that touches no lock at all, so a mining demon can
//!   scan a pinned epoch while ingest and compaction continue.
//!
//! ## Durability protocol (the order is the contract)
//!
//! Seal: `wal.sync` → write+sync run file → manifest append+sync →
//! install in memory → WAL truncate+checkpoint. A crash between any two
//! steps recovers to a state in the `[synced, acked]` prefix window:
//! before the manifest append the full WAL replays; after it the run
//! holds the same data and WAL replay over it is idempotent (the leading
//! `wal.sync` is what makes it idempotent — without it a durable *prefix*
//! of the WAL could replay stale values over a newer run). Run files a
//! crash leaves un-referenced are deleted by the orphan scan at open and
//! counted in `store.recovery.orphan_runs`.
//!
//! Lock order (declared in LINT.toml): `store.lsm.wake` →
//! `store.lsm.manifest` → `store.lsm.state` → `store.lsm.metrics`. The
//! manifest mutex also serializes run-set transitions (seal vs. compact),
//! so the run list read under it cannot change until it is released.

mod manifest;
mod run;

pub use run::Run;

use std::collections::{BTreeMap, BTreeSet};
use std::iter::Peekable;
use std::ops::Bound;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use memex_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::engine::{Engine, EngineKind, SnapshotView};
use crate::error::StoreResult;
use crate::vfs::{FileDir, MemDir, StorageDir};
use crate::wal::{Wal, WalRecord};

use manifest::Manifest;

const MANIFEST_FILE: &str = "manifest";
const WAL_FILE: &str = "wal";

/// Tuning knobs for an [`LsmStore`].
#[derive(Debug, Clone, Copy)]
pub struct LsmOptions {
    /// Seal the memtable into a run once its tracked bytes exceed this.
    pub memtable_bytes: u64,
    /// Compact once the live run count reaches this.
    pub compact_min_runs: usize,
    /// Run the compaction demon on a background thread. Tests that need
    /// deterministic schedules turn this off and call
    /// [`LsmStore::compact_now`].
    pub background_compaction: bool,
    /// Call `fsync` after every WAL append (durability vs. throughput).
    pub sync_every_append: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        // `MEMEX_LSM_MEMTABLE_BYTES` tunes the seal budget without an API
        // change, mirroring how `MEMEX_ENGINE` picks the engine — stores
        // opened through the engine-neutral path get it for free.
        let memtable_bytes = std::env::var("MEMEX_LSM_MEMTABLE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(1 << 20);
        LsmOptions {
            memtable_bytes,
            compact_min_runs: 4,
            background_compaction: true,
            sync_every_append: false,
        }
    }
}

/// Diagnostic counters (mirrors [`KvStats`](crate::kv::KvStats)).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LsmStats {
    pub puts: u64,
    pub deletes: u64,
    pub gets: u64,
    pub seals: u64,
    /// Budget-triggered seals that failed and were deferred (the writes
    /// they covered stay acked in the WAL + memtable; see [`LsmStore::put`]).
    pub seal_errors: u64,
    pub compactions: u64,
    /// Records recovered from the WAL at open time.
    pub recovered_records: u64,
    /// True if recovery found (and dropped) a torn WAL or manifest tail.
    pub recovered_torn_tail: bool,
    /// Bytes trimmed repairing torn tails at open time.
    pub recovered_repaired_bytes: u64,
    /// Partially-written run files deleted by the orphan scan at open.
    pub recovered_orphan_runs: u64,
}

/// Obs handles (inert until [`LsmStore::attach_registry`]).
struct LsmMetrics {
    puts: Counter,
    gets: Counter,
    deletes: Counter,
    memtable_bytes: Gauge,
    seals: Counter,
    seal_errors: Counter,
    seal_latency: Histogram,
    runs: Gauge,
    compactions: Counter,
    compact_bytes: Counter,
    compact_latency: Histogram,
    compact_errors: Counter,
    read_amp: Histogram,
    snapshots: Counter,
}

impl LsmMetrics {
    fn new(registry: &MetricsRegistry) -> LsmMetrics {
        LsmMetrics {
            puts: registry.counter("store.lsm.puts"),
            gets: registry.counter("store.lsm.gets"),
            deletes: registry.counter("store.lsm.deletes"),
            memtable_bytes: registry.gauge("store.lsm.memtable.bytes"),
            seals: registry.counter("store.lsm.seals"),
            seal_errors: registry.counter("store.lsm.seal.errors"),
            seal_latency: registry.histogram("store.lsm.seal.latency"),
            runs: registry.gauge("store.lsm.runs"),
            compactions: registry.counter("store.lsm.compactions"),
            compact_bytes: registry.counter("store.lsm.compact.bytes"),
            compact_latency: registry.histogram("store.lsm.compact.latency"),
            compact_errors: registry.counter("store.lsm.compact.errors"),
            read_amp: registry.histogram("store.lsm.read.amplification"),
            snapshots: registry.counter("store.lsm.snapshots"),
        }
    }
}

impl Default for LsmMetrics {
    fn default() -> Self {
        LsmMetrics::new(&MetricsRegistry::disabled())
    }
}

/// Mutable engine state behind the RwLock: what a point-in-time view is
/// made of.
struct LsmState {
    /// Sorted write buffer; `None` = tombstone.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Tracked memtable footprint in bytes (keys + values + overhead).
    memtable_bytes: u64,
    /// Immutable runs, newest first.
    runs: Vec<Arc<Run>>,
    /// Bumped on every run-set transition (seal or compaction).
    epoch: u64,
}

/// Per-entry bookkeeping cost used for the memtable budget.
fn entry_cost(key_len: usize, value_len: usize) -> u64 {
    (key_len + value_len + 32) as u64
}

impl LsmState {
    fn memtable_insert(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        let add = entry_cost(key.len(), value.as_ref().map_or(0, |v| v.len()));
        if let Some(old) = self.memtable.insert(key.to_vec(), value) {
            let sub = entry_cost(key.len(), old.as_ref().map_or(0, |v| v.len()));
            self.memtable_bytes = self.memtable_bytes.saturating_sub(sub);
        }
        self.memtable_bytes += add;
    }
}

/// Compactor wake-up channel.
#[derive(Default)]
struct WakeFlag {
    work: bool,
    shutdown: bool,
}

struct Wake {
    flag: Mutex<WakeFlag>,
    cond: Condvar,
}

/// State shared between the writer, readers (snapshots) and the
/// compaction demon.
struct LsmShared {
    state: RwLock<LsmState>,
    manifest: Mutex<Manifest>,
    metrics: Mutex<LsmMetrics>,
    wake: Wake,
    dir: Arc<dyn StorageDir>,
}

/// The log-structured engine. Writer-owned (`&mut` API like
/// [`KvStore`](crate::kv::KvStore)); concurrency happens through
/// [`LsmStore::snapshot`] handles and the background compactor.
pub struct LsmStore {
    shared: Arc<LsmShared>,
    wal: Wal,
    opts: LsmOptions,
    stats: LsmStats,
    compactor: Option<JoinHandle<()>>,
}

impl LsmStore {
    /// Fully in-memory store (still exercises WAL + run + manifest code).
    pub fn open_memory() -> StoreResult<LsmStore> {
        LsmStore::open_memory_opts(LsmOptions::default())
    }

    pub fn open_memory_opts(opts: LsmOptions) -> StoreResult<LsmStore> {
        LsmStore::open_with_dir(Arc::new(MemDir::new()), opts)
    }

    /// Open (or create) a store under `dir` on the real filesystem.
    pub fn open_dir<P: AsRef<Path>>(dir: P, opts: LsmOptions) -> StoreResult<LsmStore> {
        LsmStore::open_with_dir(Arc::new(FileDir::open(dir)?), opts)
    }

    /// Open over an arbitrary [`StorageDir`] — the fault-injection entry
    /// point: wrap a [`MemDir`] in a
    /// [`FaultyDir`](crate::vfs::FaultyDir) to script I/O failures and
    /// crashes against every file the engine touches.
    pub fn open_with_dir(dir: Arc<dyn StorageDir>, opts: LsmOptions) -> StoreResult<LsmStore> {
        // 1. Manifest: adopt the last intact run-set record.
        let manifest = Manifest::open(dir.open(MANIFEST_FILE)?)?;

        // 2. Load every referenced run. These were synced before the
        //    manifest record naming them, so failures here are real
        //    corruption, not crash debris.
        let mut runs = Vec::with_capacity(manifest.runs.len());
        for id in &manifest.runs {
            let mut storage = dir.open(&Run::file_name(*id))?;
            runs.push(Arc::new(Run::load(*id, storage.as_mut())?));
        }

        // 3. Orphan scan — the recovery blind spot the fault harness
        //    exposes: a crash mid-seal or mid-compaction leaves run files
        //    the manifest never committed. They must be deleted (never
        //    resurrected), and their ids must never be re-allocated.
        let live: BTreeSet<u64> = manifest.runs.iter().copied().collect();
        let mut next_run_id = manifest.next_run_id;
        let mut orphans = 0u64;
        for name in dir.list()? {
            if let Some(id) = Run::parse_file_name(&name) {
                if id >= next_run_id {
                    next_run_id = id + 1;
                }
                if !live.contains(&id) {
                    dir.remove(&name)?;
                    orphans += 1;
                }
            }
        }

        // 4. WAL replay into a fresh memtable (repairs torn tails).
        let mut wal = Wal::with_storage(dir.open(WAL_FILE)?)?;
        let replay = wal.replay()?;
        let mut state = LsmState {
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            runs,
            epoch: manifest.epoch,
        };
        for (_lsn, rec) in &replay.records {
            match rec {
                WalRecord::Put { key, value } => {
                    state.memtable_insert(key, Some(value.clone()));
                }
                WalRecord::Delete { key } => state.memtable_insert(key, None),
                WalRecord::Checkpoint => {}
            }
        }

        let stats = LsmStats {
            recovered_records: replay.records.len() as u64,
            recovered_torn_tail: replay.torn_tail || manifest.torn_tail,
            recovered_repaired_bytes: replay.repaired_bytes + manifest.repaired_bytes,
            recovered_orphan_runs: orphans,
            ..LsmStats::default()
        };
        let mut manifest = manifest;
        manifest.next_run_id = next_run_id;
        let shared = Arc::new(LsmShared {
            state: RwLock::new(state),
            manifest: Mutex::new(manifest),
            metrics: Mutex::new(LsmMetrics::default()),
            wake: Wake {
                flag: Mutex::new(WakeFlag::default()),
                cond: Condvar::new(),
            },
            dir,
        });
        let compactor = if opts.background_compaction {
            let thread_shared = Arc::clone(&shared);
            let min_runs = opts.compact_min_runs;
            Some(std::thread::spawn(move || {
                compactor_loop(&thread_shared, min_runs);
            }))
        } else {
            None
        };
        Ok(LsmStore {
            shared,
            wal,
            opts,
            stats,
            compactor,
        })
    }

    /// Register this store with `registry` (`store.lsm.*`, `store.wal.*`,
    /// recovery counters under `store.recovery.*`).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.wal.attach_registry(registry);
        let (runs, memtable_bytes) = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            (state.runs.len() as i64, state.memtable_bytes as i64)
        };
        {
            let mut m = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *m = LsmMetrics::new(registry);
            m.runs.set(runs);
            m.memtable_bytes.set(memtable_bytes);
        }
        registry
            .counter("store.recovery.replayed_records")
            .add(self.stats.recovered_records);
        if self.stats.recovered_torn_tail {
            registry.counter("store.recovery.torn_tails").inc();
        }
        registry
            .counter("store.recovery.repaired_bytes")
            .add(self.stats.recovered_repaired_bytes);
        registry
            .counter("store.recovery.orphan_runs")
            .add(self.stats.recovered_orphan_runs);
    }

    fn append_wal(&mut self, record: &WalRecord) -> StoreResult<()> {
        self.wal.append(record)?;
        if self.opts.sync_every_append {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// Upsert. Once the WAL append returns, the write is acked: a
    /// budget-triggered seal that fails afterwards must not retract the
    /// ack, so its error is deferred — counted in `store.lsm.seal.errors`
    /// and retried on the next trigger or explicit [`LsmStore::seal`].
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> StoreResult<()> {
        self.append_wal(&WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        let bytes = {
            let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
            state.memtable_insert(key, Some(value.to_vec()));
            state.memtable_bytes
        };
        self.stats.puts += 1;
        {
            let m = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            m.puts.inc();
            m.memtable_bytes.set(bytes as i64);
        }
        if bytes > self.opts.memtable_bytes {
            self.seal_deferred();
        }
        Ok(())
    }

    /// Delete (writes a tombstone; absent keys are fine). Seal-error
    /// deferral works exactly as in [`LsmStore::put`].
    pub fn delete(&mut self, key: &[u8]) -> StoreResult<()> {
        self.append_wal(&WalRecord::Delete { key: key.to_vec() })?;
        let bytes = {
            let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
            state.memtable_insert(key, None);
            state.memtable_bytes
        };
        self.stats.deletes += 1;
        {
            let m = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            m.deletes.inc();
            m.memtable_bytes.set(bytes as i64);
        }
        if bytes > self.opts.memtable_bytes {
            self.seal_deferred();
        }
        Ok(())
    }

    /// Budget-triggered seal: the covered writes are already acked (WAL +
    /// memtable), so a failure here only defers the seal — the memtable
    /// keeps growing past its budget until a later seal succeeds.
    fn seal_deferred(&mut self) {
        if self.seal().is_err() {
            self.stats.seal_errors += 1;
            let m = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            m.seal_errors.inc();
        }
    }

    /// Point lookup: memtable first, then runs newest-to-oldest. The
    /// number of runs consulted is the read amplification recorded in
    /// `store.lsm.read.amplification`.
    pub fn get(&mut self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let _trace = memex_obs::trace::span("store.lsm.get");
        self.stats.gets += 1;
        let (result, consulted) = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            lookup(&state.memtable, &state.runs, key)
        };
        {
            let m = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            m.gets.inc();
            m.read_amp.record(consulted);
        }
        Ok(result)
    }

    /// Merged range iteration over the live state (memtable shadows
    /// runs; newest run shadows older).
    pub fn for_each_range(
        &mut self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> StoreResult<()> {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        merged_for_each(&state.memtable, &state.runs, start, end, f);
        Ok(())
    }

    /// Collect every `(key, value)` whose key starts with `prefix`.
    pub fn scan_prefix(&mut self, prefix: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(Bound::Included(prefix), Bound::Unbounded, &mut |k, v| {
            if !k.starts_with(prefix) {
                return false;
            }
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Collect a bounded range.
    pub fn scan(
        &mut self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(start, end, &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Make every acked record durable (WAL fsync).
    pub fn sync(&mut self) -> StoreResult<()> {
        self.wal.sync()
    }

    /// Open an MVCC snapshot: one brief read lock to clone the (bounded)
    /// memtable and pin the immutable run set, then every read on the
    /// returned handle is lock-free. Ingest, seals and compactions after
    /// this point are invisible to the snapshot.
    pub fn snapshot(&self) -> LsmSnapshot {
        let (memtable, runs, epoch) = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            (state.memtable.clone(), state.runs.clone(), state.epoch)
        };
        {
            let m = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            m.snapshots.inc();
        }
        LsmSnapshot {
            memtable,
            runs,
            epoch,
        }
    }

    /// The run-set epoch readers would pin right now.
    pub fn epoch(&self) -> u64 {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        state.epoch
    }

    /// Live run count.
    pub fn run_count(&self) -> usize {
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        state.runs.len()
    }

    /// Seal the memtable into an immutable run and truncate the WAL. See
    /// the module docs for why each step orders before the next. An empty
    /// memtable still checkpoints the WAL (everything acked is already in
    /// runs, so dropping the log is safe).
    pub fn seal(&mut self) -> StoreResult<()> {
        let _trace = memex_obs::trace::span("store.lsm.seal");
        let started = Instant::now();
        // Make the whole log durable before anything derived from it is:
        // the run must never get ahead of the durable WAL, or a crash
        // could replay a stale prefix over newer run data.
        self.wal.sync()?;
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = {
            let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
            state
                .memtable
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if entries.is_empty() {
            return self.checkpoint_wal();
        }
        let run_count = {
            // The manifest mutex serializes run-set transitions against
            // the compactor; the run list cannot change until released.
            let mut manifest = self
                .shared
                .manifest
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let id = manifest.next_run_id;
            let name = Run::file_name(id);
            let run = {
                let mut storage = self.shared.dir.open(&name)?;
                match Run::write(id, entries, storage.as_mut()) {
                    Ok(run) => run,
                    Err(e) => {
                        // A partial file may remain: delete it if we can;
                        // otherwise the orphan scan reaps it at next open.
                        let _ = self.shared.dir.remove(&name);
                        return Err(e);
                    }
                }
            };
            let (epoch, ids) = {
                let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
                let ids: Vec<u64> = std::iter::once(id)
                    .chain(state.runs.iter().map(|r| r.id))
                    .collect();
                (state.epoch + 1, ids)
            };
            // On failure, keep the run file: the append may have staged
            // its record before the failure, and a crash can still land
            // those bytes durably. If the record lands, the (fully
            // synced) run is live and must exist; if it does not, the
            // orphan scan reaps the file at the next open. Removing it
            // here would let a landed record point at nothing.
            manifest.append(epoch, id + 1, &ids)?;
            // Committed: install in memory. From here on failure may only
            // leave the WAL un-truncated, which replays idempotently.
            let mut state = self.shared.state.write().unwrap_or_else(|e| e.into_inner());
            state.runs.insert(0, Arc::new(run));
            state.memtable.clear();
            state.memtable_bytes = 0;
            state.epoch = epoch;
            state.runs.len()
        };
        self.stats.seals += 1;
        {
            let m = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            m.seals.inc();
            m.memtable_bytes.set(0);
            m.runs.set(run_count as i64);
            m.seal_latency.record(elapsed_ns(started));
        }
        if run_count >= self.opts.compact_min_runs {
            self.wake_compactor();
        }
        self.checkpoint_wal()
    }

    /// Truncate the WAL and mark the checkpoint (the sealed runs now
    /// carry everything the log carried).
    fn checkpoint_wal(&mut self) -> StoreResult<()> {
        self.wal.truncate()?;
        self.wal.append(&WalRecord::Checkpoint)?;
        self.wal.sync()
    }

    /// Run one compaction pass inline (deterministic alternative to the
    /// background demon; used by crash tests). Returns whether a merge
    /// happened.
    pub fn compact_now(&mut self) -> StoreResult<bool> {
        compact_once(&self.shared, 2)
    }

    fn wake_compactor(&self) {
        if self.compactor.is_none() {
            return;
        }
        {
            let mut flag = self
                .shared
                .wake
                .flag
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            flag.work = true;
        }
        self.shared.wake.cond.notify_all();
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> LsmStats {
        self.stats
    }

    /// Expose the WAL for fault-injection in recovery experiments.
    #[doc(hidden)]
    pub fn wal_mut(&mut self) -> &mut Wal {
        &mut self.wal
    }
}

impl Drop for LsmStore {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.take() {
            {
                let mut flag = self
                    .shared
                    .wake
                    .flag
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                flag.shutdown = true;
            }
            self.shared.wake.cond.notify_all();
            let _ = handle.join();
        }
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Background compactor: waits for a wake, then merges until there is
/// nothing left to merge. Errors are counted and retried at the next
/// wake — the demon itself never dies and never panics.
fn compactor_loop(shared: &Arc<LsmShared>, min_runs: usize) {
    loop {
        {
            let mut flag = shared.wake.flag.lock().unwrap_or_else(|e| e.into_inner());
            while !flag.work && !flag.shutdown {
                flag = shared
                    .wake
                    .cond
                    .wait(flag)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if flag.shutdown {
                return;
            }
            flag.work = false;
        }
        loop {
            match compact_once(shared, min_runs) {
                Ok(true) => continue,
                Ok(false) => break,
                Err(_) => {
                    let m = shared.metrics.lock().unwrap_or_else(|e| e.into_inner());
                    m.compact_errors.inc();
                    break;
                }
            }
        }
    }
}

/// Merge the whole run set into one run. The merge itself happens on
/// `Arc` clones with no lock held (readers and the writer proceed);
/// the manifest mutex is taken twice, briefly: once to snapshot the
/// victim set and reserve a run id, and once to commit the transition
/// (the state write lock is held just long enough to swap the list).
/// If the epoch moved between the two — a seal or another compaction
/// landed — the merged output is stale: the orphan file is removed and
/// the caller retries against the new run set. Snapshots holding the
/// old runs keep them alive; their files are deleted once the manifest
/// stops referencing them (failed deletions become orphans for the next
/// open).
fn compact_once(shared: &Arc<LsmShared>, min_runs: usize) -> StoreResult<bool> {
    let _trace = memex_obs::trace::span("store.lsm.compact");
    let started = Instant::now();
    let (victims, old_epoch, id) = {
        let mut manifest = shared.manifest.lock().unwrap_or_else(|e| e.into_inner());
        let state = shared.state.read().unwrap_or_else(|e| e.into_inner());
        if state.runs.len() < min_runs.max(2) {
            return Ok(false);
        }
        // Reserve the run id in memory only: a concurrent seal allocates
        // past it, and the commit append persists the high-water mark.
        // A reservation abandoned by abort or crash is never densely
        // required — the orphan scan owns unreferenced files.
        let id = manifest.next_run_id;
        manifest.next_run_id = id + 1;
        (state.runs.clone(), state.epoch, id)
    };
    // Oldest first so newer entries overwrite; drop tombstones — there
    // is nothing older below a full merge for them to shadow. No lock is
    // held for the merge or the run write: this is the bulk of the work,
    // and sealers must not stall behind it.
    let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
    for run in victims.iter().rev() {
        for (k, v) in &run.entries {
            merged.insert(k.clone(), v.clone());
        }
    }
    let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
        merged.into_iter().filter(|(_, v)| v.is_some()).collect();
    let input_bytes: u64 = victims.iter().map(|r| r.bytes).sum();
    let name = Run::file_name(id);
    let run = {
        let mut storage = shared.dir.open(&name)?;
        match Run::write(id, entries, storage.as_mut()) {
            Ok(run) => run,
            Err(e) => {
                let _ = shared.dir.remove(&name);
                return Err(e);
            }
        }
    };
    let mut manifest = shared.manifest.lock().unwrap_or_else(|e| e.into_inner());
    {
        let state = shared.state.read().unwrap_or_else(|e| e.into_inner());
        if state.epoch != old_epoch {
            // The run set changed under us (seal or concurrent compact):
            // the merge no longer covers every live run, and installing
            // it would drop the newcomers. Abandon this output and ask
            // the caller to retry against the new set. Never reached
            // single-threaded (compact_now in crash tests).
            drop(state);
            drop(manifest);
            let _ = shared.dir.remove(&name);
            return Ok(true);
        }
    }
    let epoch = old_epoch + 1;
    // On failure, keep the merged run file — same reasoning as in `seal`:
    // the staged manifest record may still land at a crash. Either the
    // record lands (run live, victims become orphans) or it does not
    // (this file becomes the orphan) — recovery reconciles both. The
    // persisted next_run_id must cover ids a concurrent seal may have
    // taken after our reservation.
    let next_id = manifest.next_run_id.max(id + 1);
    manifest.append(epoch, next_id, &[id])?;
    {
        let mut state = shared.state.write().unwrap_or_else(|e| e.into_inner());
        state.runs = vec![Arc::new(run)];
        state.epoch = epoch;
    }
    drop(manifest);
    for victim in &victims {
        let _ = shared.dir.remove(&Run::file_name(victim.id));
    }
    {
        let m = shared.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.compactions.inc();
        m.compact_bytes.add(input_bytes);
        m.compact_latency.record(elapsed_ns(started));
        m.runs.set(1);
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Merged reads
// ---------------------------------------------------------------------------

/// Point lookup over a memtable + run stack; returns the value (if any)
/// and the number of runs consulted (read amplification).
fn lookup(
    memtable: &BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    runs: &[Arc<Run>],
    key: &[u8],
) -> (Option<Vec<u8>>, u64) {
    if let Some(v) = memtable.get(key) {
        return (v.clone(), 0);
    }
    let mut consulted = 0u64;
    for run in runs {
        consulted += 1;
        if let Some(v) = run.get(key) {
            return (v.clone(), consulted);
        }
    }
    (None, consulted)
}

/// True when the range can contain nothing (guards the `BTreeMap::range`
/// panic conditions as well).
fn empty_range(start: &Bound<&[u8]>, end: &Bound<&[u8]>) -> bool {
    match (start, end) {
        (Bound::Included(s), Bound::Included(e)) => s > e,
        (Bound::Included(s), Bound::Excluded(e))
        | (Bound::Excluded(s), Bound::Included(e))
        | (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
        _ => false,
    }
}

fn within_end(key: &[u8], end: &Bound<&[u8]>) -> bool {
    match end {
        Bound::Included(e) => key <= *e,
        Bound::Excluded(e) => key < *e,
        Bound::Unbounded => true,
    }
}

type MergeIter<'a> = Box<dyn Iterator<Item = (&'a [u8], &'a Option<Vec<u8>>)> + 'a>;
type MergeSource<'a> = Peekable<MergeIter<'a>>;

/// K-way merge over the memtable and runs, youngest source wins per key,
/// tombstones suppressed. `f` returning `false` stops the iteration.
fn merged_for_each(
    memtable: &BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    runs: &[Arc<Run>],
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
) {
    if empty_range(&start, &end) {
        return;
    }
    // Sources ordered youngest-first: memtable, then runs newest-first.
    let mut sources: Vec<MergeSource<'_>> = Vec::with_capacity(runs.len() + 1);
    let mem_iter: MergeIter<'_> = Box::new(
        memtable
            .range::<[u8], _>((start, end))
            .map(|(k, v)| (k.as_slice(), v)),
    );
    sources.push(mem_iter.peekable());
    for run in runs {
        let lo = match start {
            Bound::Included(k) => run.lower_bound(k),
            Bound::Excluded(k) => run.entries.partition_point(|(key, _)| key.as_slice() <= k),
            Bound::Unbounded => 0,
        };
        let it: MergeIter<'_> = Box::new(
            run.entries
                .get(lo..)
                .into_iter()
                .flatten()
                .map(|(k, v)| (k.as_slice(), v))
                .take_while(move |(k, _)| within_end(k, &end)),
        );
        sources.push(it.peekable());
    }
    loop {
        // Find the smallest key any source is looking at.
        let mut min_key: Option<Vec<u8>> = None;
        for source in sources.iter_mut() {
            if let Some((k, _)) = source.peek() {
                match &min_key {
                    Some(m) if *k >= m.as_slice() => {}
                    _ => min_key = Some(k.to_vec()),
                }
            }
        }
        let Some(key) = min_key else {
            return;
        };
        // Pop every source at that key; the youngest (first) wins.
        let mut chosen: Option<Option<Vec<u8>>> = None;
        for source in sources.iter_mut() {
            if let Some((k, v)) = source.peek() {
                if *k == key.as_slice() {
                    if chosen.is_none() {
                        chosen = Some((*v).clone());
                    }
                    source.next();
                }
            }
        }
        if let Some(Some(value)) = chosen {
            if !f(&key, &value) {
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A pinned point-in-time view: the memtable as of the snapshot plus
/// `Arc`s on the then-live immutable runs. Reads take no lock at all.
pub struct LsmSnapshot {
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    runs: Vec<Arc<Run>>,
    epoch: u64,
}

impl LsmSnapshot {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        lookup(&self.memtable, &self.runs, key).0
    }

    pub fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) {
        merged_for_each(&self.memtable, &self.runs, start, end, f);
    }
}

impl SnapshotView for LsmSnapshot {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        LsmSnapshot::get(self, key)
    }

    fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) {
        LsmSnapshot::for_each_range(self, start, end, f);
    }
}

// ---------------------------------------------------------------------------
// Engine impl
// ---------------------------------------------------------------------------

impl Engine for LsmStore {
    fn kind(&self) -> EngineKind {
        EngineKind::Lsm
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> StoreResult<()> {
        LsmStore::put(self, key, value)
    }

    fn delete(&mut self, key: &[u8]) -> StoreResult<()> {
        LsmStore::delete(self, key)
    }

    fn get(&mut self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        LsmStore::get(self, key)
    }

    fn scan(
        &mut self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        LsmStore::scan(self, start, end)
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        LsmStore::scan_prefix(self, prefix)
    }

    fn for_each_range(
        &mut self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> StoreResult<()> {
        LsmStore::for_each_range(self, start, end, f)
    }

    fn sync(&mut self) -> StoreResult<()> {
        LsmStore::sync(self)
    }

    fn checkpoint(&mut self) -> StoreResult<()> {
        self.seal()
    }

    fn snapshot(&mut self) -> StoreResult<Box<dyn SnapshotView>> {
        Ok(Box::new(LsmStore::snapshot(self)))
    }

    fn attach_registry(&mut self, registry: &MetricsRegistry) {
        LsmStore::attach_registry(self, registry);
    }

    fn check(&mut self) -> StoreResult<()> {
        // Run files verify their checksum and ordering at load; the live
        // invariant to check is that run ids are unique and newest-first.
        let state = self.shared.state.read().unwrap_or_else(|e| e.into_inner());
        let mut prev: Option<u64> = None;
        for run in &state.runs {
            if let Some(p) = prev {
                if run.id >= p {
                    return Err(crate::error::StoreError::Corrupt(format!(
                        "run order violated: {} after {}",
                        run.id, p
                    )));
                }
            }
            prev = Some(run.id);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> LsmOptions {
        LsmOptions {
            memtable_bytes: 1 << 30, // never auto-seal
            compact_min_runs: 64,    // never auto-compact
            background_compaction: false,
            sync_every_append: false,
        }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(b"1".to_vec()));
        s.delete(b"a").unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn seal_moves_memtable_into_a_run_and_reads_merge() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"a", b"old").unwrap();
        s.put(b"b", b"2").unwrap();
        s.seal().unwrap();
        assert_eq!(s.run_count(), 1);
        s.put(b"a", b"new").unwrap();
        s.delete(b"b").unwrap();
        assert_eq!(
            s.get(b"a").unwrap(),
            Some(b"new".to_vec()),
            "memtable shadows run"
        );
        assert_eq!(s.get(b"b").unwrap(), None, "tombstone shadows run");
        let all = s.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(all, vec![(b"a".to_vec(), b"new".to_vec())]);
    }

    #[test]
    fn compaction_merges_runs_and_drops_tombstones() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        s.seal().unwrap();
        s.delete(b"a").unwrap();
        s.put(b"c", b"3").unwrap();
        s.seal().unwrap();
        assert_eq!(s.run_count(), 2);
        assert!(s.compact_now().unwrap());
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(s.get(b"c").unwrap(), Some(b"3".to_vec()));
        let state = s.shared.state.read().unwrap();
        let merged = state.runs.first().unwrap();
        assert_eq!(merged.entries.len(), 2, "tombstone dropped by full merge");
    }

    #[test]
    fn snapshot_pins_pre_burst_state_across_seal_and_compaction() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"k1", b"v1").unwrap();
        s.put(b"k2", b"v2").unwrap();
        let snap = s.snapshot();
        let epoch = SnapshotView::epoch(&snap);
        // Burst: overwrite, delete, seal twice, compact.
        s.put(b"k1", b"changed").unwrap();
        s.delete(b"k2").unwrap();
        s.seal().unwrap();
        s.put(b"k3", b"v3").unwrap();
        s.seal().unwrap();
        s.compact_now().unwrap();
        // The snapshot still reads the exact pre-burst state.
        assert_eq!(snap.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(snap.get(b"k2"), Some(b"v2".to_vec()));
        assert_eq!(snap.get(b"k3"), None);
        let mut seen = Vec::new();
        snap.for_each_range(Bound::Unbounded, Bound::Unbounded, &mut |k, v| {
            seen.push((k.to_vec(), v.to_vec()));
            true
        });
        assert_eq!(
            seen,
            vec![
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k2".to_vec(), b"v2".to_vec())
            ]
        );
        assert!(s.epoch() > epoch, "live epoch moved on");
    }

    #[test]
    fn reopen_recovers_runs_and_wal() {
        let dir: Arc<MemDir> = Arc::new(MemDir::new());
        {
            let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
            s.put(b"sealed", b"1").unwrap();
            s.seal().unwrap();
            s.put(b"walled", b"2").unwrap();
            s.sync().unwrap();
        }
        let mut s = LsmStore::open_with_dir(dir, tiny_opts()).unwrap();
        assert_eq!(s.get(b"sealed").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.get(b"walled").unwrap(), Some(b"2".to_vec()));
        assert_eq!(
            s.stats().recovered_records,
            1,
            "only the unsealed op replays"
        );
    }

    #[test]
    fn orphan_runs_are_deleted_and_counted_never_resurrected() {
        let dir: Arc<MemDir> = Arc::new(MemDir::new());
        {
            let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
            s.put(b"a", b"1").unwrap();
            s.seal().unwrap();
        }
        // Fake a crash mid-seal: a run file the manifest never committed.
        {
            let mut orphan = dir.open(&Run::file_name(99)).unwrap();
            let entries = vec![(b"ghost".to_vec(), Some(b"boo".to_vec()))];
            Run::write(99, entries, orphan.as_mut()).unwrap();
        }
        let mut s = LsmStore::open_with_dir(dir.clone(), tiny_opts()).unwrap();
        assert_eq!(s.stats().recovered_orphan_runs, 1);
        assert_eq!(
            s.get(b"ghost").unwrap(),
            None,
            "orphan data must not resurrect"
        );
        assert!(
            !dir.exists(&Run::file_name(99)).unwrap(),
            "orphan file deleted"
        );
        // Ids never reused: the next seal allocates past the orphan.
        s.put(b"b", b"2").unwrap();
        s.seal().unwrap();
        assert!(dir.exists(&Run::file_name(100)).unwrap());
    }

    #[test]
    fn background_compactor_kicks_in() {
        let opts = LsmOptions {
            memtable_bytes: 64,
            compact_min_runs: 2,
            background_compaction: true,
            sync_every_append: false,
        };
        let mut s = LsmStore::open_memory_opts(opts).unwrap();
        for i in 0..64u32 {
            let k = format!("key-{i:04}");
            s.put(k.as_bytes(), &[0u8; 40]).unwrap();
        }
        // Wait (bounded) for the demon to merge down to one run.
        for _ in 0..200 {
            if s.run_count() <= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(s.run_count() <= 2, "compactor should have merged runs");
        for i in 0..64u32 {
            let k = format!("key-{i:04}");
            assert_eq!(s.get(k.as_bytes()).unwrap(), Some(vec![0u8; 40]));
        }
    }

    #[test]
    fn scan_prefix_and_ranges_merge_correctly() {
        let mut s = LsmStore::open_memory_opts(tiny_opts()).unwrap();
        s.put(b"p/a", b"1").unwrap();
        s.put(b"p/b", b"2").unwrap();
        s.put(b"q/x", b"3").unwrap();
        s.seal().unwrap();
        s.put(b"p/b", b"2b").unwrap();
        s.put(b"p/c", b"4").unwrap();
        let got = s.scan_prefix(b"p/").unwrap();
        assert_eq!(
            got,
            vec![
                (b"p/a".to_vec(), b"1".to_vec()),
                (b"p/b".to_vec(), b"2b".to_vec()),
                (b"p/c".to_vec(), b"4".to_vec()),
            ]
        );
        let bounded = s
            .scan(
                Bound::Excluded(b"p/a".as_slice()),
                Bound::Included(b"p/c".as_slice()),
            )
            .unwrap();
        assert_eq!(bounded.len(), 2);
        assert!(s
            .scan(
                Bound::Included(b"z".as_slice()),
                Bound::Excluded(b"a".as_slice())
            )
            .unwrap()
            .is_empty());
    }
}
