//! Write-ahead log with CRC-framed records and torn-tail detection.
//!
//! The paper's server "recovers from network and programming errors quickly,
//! even if it has to discard a few client events" (§3). The WAL realises
//! exactly that contract: every mutation is framed with a length + CRC-32;
//! on recovery we replay complete frames and silently drop a torn tail —
//! those are the "few discarded events".

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use memex_obs::{Counter, MetricsRegistry};

use crate::codec::{crc32, get_bytes, get_u32, get_u64, put_bytes, put_u32, put_u64};
use crate::error::{StoreError, StoreResult};

/// A single logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Upsert of `key` to `value`.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Deletion of `key`.
    Delete { key: Vec<u8> },
    /// Marks that everything up to this point is safely in the main store;
    /// replay may start after the *last* checkpoint.
    Checkpoint,
}

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;

impl WalRecord {
    fn encode_payload(&self, lsn: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        put_u64(&mut out, lsn);
        match self {
            WalRecord::Put { key, value } => {
                out.push(KIND_PUT);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            WalRecord::Delete { key } => {
                out.push(KIND_DELETE);
                put_bytes(&mut out, key);
            }
            WalRecord::Checkpoint => out.push(KIND_CHECKPOINT),
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> StoreResult<(u64, WalRecord)> {
        let mut pos = 0usize;
        let lsn = get_u64(payload, &mut pos)?;
        let kind = *payload
            .get(pos)
            .ok_or_else(|| StoreError::Corrupt("wal record missing kind".into()))?;
        pos += 1;
        let rec = match kind {
            KIND_PUT => {
                let key = get_bytes(payload, &mut pos)?.to_vec();
                let value = get_bytes(payload, &mut pos)?.to_vec();
                WalRecord::Put { key, value }
            }
            KIND_DELETE => WalRecord::Delete {
                key: get_bytes(payload, &mut pos)?.to_vec(),
            },
            KIND_CHECKPOINT => WalRecord::Checkpoint,
            k => return Err(StoreError::Corrupt(format!("unknown wal kind {k}"))),
        };
        Ok((lsn, rec))
    }
}

/// Backing bytes for the log.
enum WalBacking {
    Mem(Vec<u8>),
    File(File),
}

/// Obs handles (inert until [`Wal::attach_registry`] is called).
#[derive(Default)]
struct WalMetrics {
    appends: Counter,
    appended_bytes: Counter,
    fsyncs: Counter,
    replays: Counter,
    torn_tails: Counter,
}

/// Append-only write-ahead log.
pub struct Wal {
    backing: WalBacking,
    next_lsn: u64,
    metrics: WalMetrics,
}

/// Outcome of replaying a log.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Records after the last checkpoint, in append order.
    pub records: Vec<(u64, WalRecord)>,
    /// Complete frames seen in total (including checkpointed prefix).
    pub frames_seen: u64,
    /// True when a torn/corrupt tail was detected and dropped.
    pub torn_tail: bool,
}

impl Wal {
    /// In-memory log (tests / transient stores).
    pub fn in_memory() -> Wal {
        Wal {
            backing: WalBacking::Mem(Vec::new()),
            next_lsn: 1,
            metrics: WalMetrics::default(),
        }
    }

    /// Open or create a file-backed log. The existing content is left
    /// untouched; call [`Wal::replay`] to read it.
    pub fn open_file<P: AsRef<Path>>(path: P) -> StoreResult<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Wal {
            backing: WalBacking::File(file),
            next_lsn: 1,
            metrics: WalMetrics::default(),
        })
    }

    /// Register this log's counters with `registry` (`store.wal.*`).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = WalMetrics {
            appends: registry.counter("store.wal.appends"),
            appended_bytes: registry.counter("store.wal.appended_bytes"),
            fsyncs: registry.counter("store.wal.fsyncs"),
            replays: registry.counter("store.wal.replays"),
            torn_tails: registry.counter("store.wal.torn_tails"),
        };
    }

    /// Append a record; returns its LSN. Frame layout:
    /// `[len: u32][crc32(payload): u32][payload]`.
    pub fn append(&mut self, record: &WalRecord) -> StoreResult<u64> {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let payload = record.encode_payload(lsn);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        match &mut self.backing {
            WalBacking::Mem(buf) => buf.extend_from_slice(&frame),
            WalBacking::File(f) => {
                f.seek(SeekFrom::End(0))?;
                f.write_all(&frame)?;
            }
        }
        self.metrics.appends.inc();
        self.metrics.appended_bytes.add(frame.len() as u64);
        Ok(lsn)
    }

    /// Flush appended frames to stable storage.
    pub fn sync(&mut self) -> StoreResult<()> {
        if let WalBacking::File(f) = &mut self.backing {
            f.sync_data()?;
            self.metrics.fsyncs.inc();
        }
        Ok(())
    }

    /// Read the whole log, returning the records after the last checkpoint.
    /// A corrupt or torn tail terminates the replay (it is *not* an error —
    /// it is the crash case the log exists for) and sets `torn_tail`.
    pub fn replay(&mut self) -> StoreResult<Replay> {
        let bytes = self.read_all()?;
        let mut replay = Replay::default();
        let mut pos = 0usize;
        let mut max_lsn = 0u64;
        while pos < bytes.len() {
            let header = (|| -> StoreResult<(usize, u32)> {
                let len = get_u32(&bytes, &mut pos)? as usize;
                let crc = get_u32(&bytes, &mut pos)?;
                Ok((len, crc))
            })();
            let (len, crc) = match header {
                Ok(h) => h,
                Err(_) => {
                    replay.torn_tail = true;
                    break;
                }
            };
            if pos + len > bytes.len() {
                replay.torn_tail = true;
                break;
            }
            let payload = &bytes[pos..pos + len];
            if crc32(payload) != crc {
                replay.torn_tail = true;
                break;
            }
            pos += len;
            let (lsn, rec) = match WalRecord::decode_payload(payload) {
                Ok(r) => r,
                Err(_) => {
                    replay.torn_tail = true;
                    break;
                }
            };
            replay.frames_seen += 1;
            max_lsn = max_lsn.max(lsn);
            if matches!(rec, WalRecord::Checkpoint) {
                replay.records.clear();
            } else {
                replay.records.push((lsn, rec));
            }
        }
        self.next_lsn = max_lsn + 1;
        self.metrics.replays.inc();
        if replay.torn_tail {
            self.metrics.torn_tails.inc();
        }
        Ok(replay)
    }

    /// Drop all content (used after a checkpoint has made it redundant).
    pub fn truncate(&mut self) -> StoreResult<()> {
        match &mut self.backing {
            WalBacking::Mem(buf) => buf.clear(),
            WalBacking::File(f) => {
                f.set_len(0)?;
                f.seek(SeekFrom::Start(0))?;
                f.sync_data()?;
            }
        }
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len_bytes(&mut self) -> StoreResult<u64> {
        match &mut self.backing {
            WalBacking::Mem(buf) => Ok(buf.len() as u64),
            WalBacking::File(f) => Ok(f.metadata()?.len()),
        }
    }

    /// Deliberately corrupt the tail by removing `n` trailing bytes —
    /// simulates a crash mid-write. Used by recovery tests and the F3
    /// fault-injection experiment.
    pub fn tear_tail(&mut self, n: u64) -> StoreResult<()> {
        match &mut self.backing {
            WalBacking::Mem(buf) => {
                let keep = buf.len().saturating_sub(n as usize);
                buf.truncate(keep);
            }
            WalBacking::File(f) => {
                let len = f.metadata()?.len();
                f.set_len(len.saturating_sub(n))?;
            }
        }
        Ok(())
    }

    fn read_all(&mut self) -> StoreResult<Vec<u8>> {
        match &mut self.backing {
            WalBacking::Mem(buf) => Ok(buf.clone()),
            WalBacking::File(f) => {
                let mut out = Vec::new();
                f.seek(SeekFrom::Start(0))?;
                f.read_to_end(&mut out)?;
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_replay_round_trip() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Delete { key: b"b".to_vec() })
            .unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.frames_seen, 2);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records[0].0, 1);
        assert_eq!(
            replay.records[0].1,
            WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec()
            }
        );
    }

    #[test]
    fn checkpoint_clears_prefix() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Checkpoint).unwrap();
        wal.append(&WalRecord::Put {
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.frames_seen, 3);
        assert_eq!(
            replay.records[0].1,
            WalRecord::Put {
                key: b"b".to_vec(),
                value: b"2".to_vec()
            }
        );
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Put {
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        wal.tear_tail(3).unwrap();
        let replay = wal.replay().unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 1, "only the complete record survives");
    }

    #[test]
    fn bit_flip_detected_by_crc() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Put {
            key: b"abc".to_vec(),
            value: b"def".to_vec(),
        })
        .unwrap();
        if let WalBacking::Mem(buf) = &mut wal.backing {
            let last = buf.len() - 1;
            buf[last] ^= 0xFF;
        }
        let replay = wal.replay().unwrap();
        assert!(replay.torn_tail);
        assert!(replay.records.is_empty());
    }

    #[test]
    fn lsns_resume_after_replay() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Checkpoint).unwrap();
        wal.append(&WalRecord::Delete { key: b"x".to_vec() })
            .unwrap();
        wal.replay().unwrap();
        let lsn = wal.append(&WalRecord::Checkpoint).unwrap();
        assert_eq!(lsn, 3);
    }

    #[test]
    fn file_backed_wal_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("memex-wal-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_file(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            })
            .unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open_file(&path).unwrap();
            let replay = wal.replay().unwrap();
            assert_eq!(replay.records.len(), 1);
        }
        let _ = std::fs::remove_file(&path);
    }
}
