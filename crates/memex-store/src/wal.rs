//! Write-ahead log with CRC-framed records and torn-tail detection.
//!
//! The paper's server "recovers from network and programming errors quickly,
//! even if it has to discard a few client events" (§3). The WAL realises
//! exactly that contract: every mutation is framed with a length + CRC-32;
//! on recovery we replay complete frames and silently drop a torn tail —
//! those are the "few discarded events".
//!
//! The log tracks its **logical end** (`end_pos`) independently of the
//! physical backing length: a failed or torn append leaves garbage bytes
//! beyond `end_pos`, and the next append overwrites them. Without this, a
//! single failed append would strand every later record behind mid-log
//! garbage that replay cannot cross.
//!
//! ## LSN contract
//!
//! LSNs are unique and strictly increasing **among durable frames**. A
//! torn tail loses the frames after the tear; since those frames were
//! never durable (their appends either failed or were not covered by a
//! sync), their LSNs may be reused by post-recovery appends. Consumers
//! must not treat an LSN as stable until the append has been synced —
//! the same moment the operation itself becomes durable. Replay also
//! *repairs* the log (truncates the torn bytes), so a reopened log never
//! carries two frames with the same LSN.

use std::path::Path;

use memex_obs::{Counter, MetricsRegistry};

use crate::codec::{crc32, get_bytes, get_u32, get_u64, put_bytes, put_u32, put_u64};
use crate::error::{StoreError, StoreResult};
use crate::vfs::{FileStorage, MemStorage, Storage};

/// A single logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Upsert of `key` to `value`.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Deletion of `key`.
    Delete { key: Vec<u8> },
    /// Marks that everything up to this point is safely in the main store;
    /// replay may start after the *last* checkpoint.
    Checkpoint,
}

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;

impl WalRecord {
    fn encode_payload(&self, lsn: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        put_u64(&mut out, lsn);
        match self {
            WalRecord::Put { key, value } => {
                out.push(KIND_PUT);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            WalRecord::Delete { key } => {
                out.push(KIND_DELETE);
                put_bytes(&mut out, key);
            }
            WalRecord::Checkpoint => out.push(KIND_CHECKPOINT),
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> StoreResult<(u64, WalRecord)> {
        let mut pos = 0usize;
        let lsn = get_u64(payload, &mut pos)?;
        let kind = *payload
            .get(pos)
            .ok_or_else(|| StoreError::Corrupt("wal record missing kind".into()))?;
        pos += 1;
        let rec = match kind {
            KIND_PUT => {
                let key = get_bytes(payload, &mut pos)?.to_vec();
                let value = get_bytes(payload, &mut pos)?.to_vec();
                WalRecord::Put { key, value }
            }
            KIND_DELETE => WalRecord::Delete {
                key: get_bytes(payload, &mut pos)?.to_vec(),
            },
            KIND_CHECKPOINT => WalRecord::Checkpoint,
            k => return Err(StoreError::Corrupt(format!("unknown wal kind {k}"))),
        };
        Ok((lsn, rec))
    }
}

/// Obs handles (inert until [`Wal::attach_registry`] is called).
#[derive(Default)]
struct WalMetrics {
    appends: Counter,
    appended_bytes: Counter,
    fsyncs: Counter,
    replays: Counter,
    torn_tails: Counter,
}

/// Append-only write-ahead log over a [`Storage`] backing.
pub struct Wal {
    backing: Box<dyn Storage>,
    /// Byte offset one past the last *successfully appended* frame. New
    /// frames are written here, overwriting any torn garbage beyond it.
    end_pos: u64,
    /// Watermark of the logical log known to be on stable storage:
    /// `[0, durable_end)` has been covered by a successful sync.
    /// [`Wal::sync`] is a no-op while `durable_end == end_pos`, so callers
    /// may sync defensively (e.g. at the top of a checkpoint) without
    /// paying for an fsync when nothing is pending.
    durable_end: u64,
    next_lsn: u64,
    metrics: WalMetrics,
}

/// Outcome of replaying a log.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Records after the last checkpoint, in append order.
    pub records: Vec<(u64, WalRecord)>,
    /// Complete frames seen in total (including checkpointed prefix).
    pub frames_seen: u64,
    /// True when a torn/corrupt tail was detected and dropped.
    pub torn_tail: bool,
    /// Bytes dropped by the torn-tail repair.
    pub repaired_bytes: u64,
}

impl Wal {
    /// In-memory log (tests / transient stores).
    pub fn in_memory() -> Wal {
        Self::with_storage(Box::new(MemStorage::new())).expect("mem storage cannot fail to open")
    }

    /// Open or create a file-backed log. The existing content is left
    /// untouched; call [`Wal::replay`] to read it.
    pub fn open_file<P: AsRef<Path>>(path: P) -> StoreResult<Wal> {
        Self::with_storage(Box::new(FileStorage::open(path)?))
    }

    /// Wrap an arbitrary storage (the fault-injection entry point).
    pub fn with_storage(backing: Box<dyn Storage>) -> StoreResult<Wal> {
        let end_pos = backing.len()?;
        Ok(Wal {
            backing,
            end_pos,
            // Content present at open time was written by a previous
            // incarnation; whatever of it survived is by definition what
            // the device kept. Replay re-establishes the watermark.
            durable_end: end_pos,
            next_lsn: 1,
            metrics: WalMetrics::default(),
        })
    }

    /// Register this log's counters with `registry` (`store.wal.*`).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = WalMetrics {
            appends: registry.counter("store.wal.appends"),
            appended_bytes: registry.counter("store.wal.appended_bytes"),
            fsyncs: registry.counter("store.wal.fsyncs"),
            replays: registry.counter("store.wal.replays"),
            torn_tails: registry.counter("store.wal.torn_tails"),
        };
    }

    /// Append a record; returns its LSN. Frame layout:
    /// `[len: u32][crc32(payload): u32][payload]`.
    ///
    /// On failure nothing logical changes: the LSN is not consumed and the
    /// next append rewrites the same offset, overwriting any torn bytes
    /// the failed write left behind.
    pub fn append(&mut self, record: &WalRecord) -> StoreResult<u64> {
        let _trace = memex_obs::trace::span("store.wal.append");
        let lsn = self.next_lsn;
        let payload = record.encode_payload(lsn);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.backing.write_all_at(self.end_pos, &frame)?;
        self.end_pos += frame.len() as u64;
        self.next_lsn = lsn + 1;
        self.metrics.appends.inc();
        self.metrics.appended_bytes.add(frame.len() as u64);
        Ok(lsn)
    }

    /// Flush appended frames to stable storage. No-op (and no fsync)
    /// when every appended frame is already covered by a prior sync.
    pub fn sync(&mut self) -> StoreResult<()> {
        let _trace = memex_obs::trace::span("store.wal.sync");
        if self.durable_end == self.end_pos {
            return Ok(());
        }
        self.backing.sync()?;
        self.durable_end = self.end_pos;
        self.metrics.fsyncs.inc();
        Ok(())
    }

    /// Read the whole log, returning the records after the last checkpoint.
    /// A corrupt or torn tail terminates the replay (it is *not* an error —
    /// it is the crash case the log exists for), sets `torn_tail`, and
    /// **repairs** the log by truncating the torn bytes so they can never
    /// shadow later appends.
    pub fn replay(&mut self) -> StoreResult<Replay> {
        let bytes = self.read_all()?;
        let mut replay = Replay::default();
        let mut pos = 0usize;
        let mut valid_end = 0usize;
        let mut max_lsn = 0u64;
        while pos < bytes.len() {
            let header = (|| -> StoreResult<(usize, u32)> {
                let len = get_u32(&bytes, &mut pos)? as usize;
                let crc = get_u32(&bytes, &mut pos)?;
                Ok((len, crc))
            })();
            let (len, crc) = match header {
                Ok(h) => h,
                Err(_) => {
                    replay.torn_tail = true;
                    break;
                }
            };
            if pos + len > bytes.len() {
                replay.torn_tail = true;
                break;
            }
            let payload = &bytes[pos..pos + len];
            if crc32(payload) != crc {
                replay.torn_tail = true;
                break;
            }
            pos += len;
            let (lsn, rec) = match WalRecord::decode_payload(payload) {
                Ok(r) => r,
                Err(_) => {
                    replay.torn_tail = true;
                    break;
                }
            };
            valid_end = pos;
            replay.frames_seen += 1;
            max_lsn = max_lsn.max(lsn);
            if matches!(rec, WalRecord::Checkpoint) {
                replay.records.clear();
            } else {
                replay.records.push((lsn, rec));
            }
        }
        if replay.torn_tail {
            replay.repaired_bytes = bytes.len() as u64 - valid_end as u64;
            // Repair: drop the torn bytes. Best-effort — if the truncation
            // itself fails, `end_pos` still fences the garbage off (new
            // appends overwrite it and replay re-truncates next time).
            let _ = self.backing.set_len(valid_end as u64);
        }
        self.end_pos = valid_end as u64;
        self.durable_end = self.durable_end.min(self.end_pos);
        self.next_lsn = max_lsn + 1;
        self.metrics.replays.inc();
        if replay.torn_tail {
            self.metrics.torn_tails.inc();
        }
        Ok(replay)
    }

    /// Drop all content (used after a checkpoint has made it redundant).
    pub fn truncate(&mut self) -> StoreResult<()> {
        self.backing.set_len(0)?;
        self.end_pos = 0;
        // The empty prefix is trivially durable; if the sync below fails,
        // a retry re-runs the (idempotent) set_len + sync pair.
        self.durable_end = 0;
        self.backing.sync()?;
        Ok(())
    }

    /// Current logical log size in bytes (complete frames only).
    pub fn len_bytes(&mut self) -> StoreResult<u64> {
        Ok(self.end_pos)
    }

    /// Deliberately corrupt the tail by removing `n` trailing bytes —
    /// simulates a crash mid-write. Used by recovery tests and the F3
    /// fault-injection experiment.
    pub fn tear_tail(&mut self, n: u64) -> StoreResult<()> {
        let len = self.backing.len()?;
        let keep = len.saturating_sub(n);
        self.backing.set_len(keep)?;
        self.end_pos = self.end_pos.min(keep);
        self.durable_end = self.durable_end.min(keep);
        Ok(())
    }

    fn read_all(&mut self) -> StoreResult<Vec<u8>> {
        let len = self.backing.len()?;
        let mut out = vec![0u8; len as usize];
        self.backing.read_exact_at(0, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultyStorage};

    #[test]
    fn append_replay_round_trip() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Delete { key: b"b".to_vec() })
            .unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.frames_seen, 2);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records[0].0, 1);
        assert_eq!(
            replay.records[0].1,
            WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec()
            }
        );
    }

    #[test]
    fn checkpoint_clears_prefix() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Checkpoint).unwrap();
        wal.append(&WalRecord::Put {
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.frames_seen, 3);
        assert_eq!(
            replay.records[0].1,
            WalRecord::Put {
                key: b"b".to_vec(),
                value: b"2".to_vec()
            }
        );
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Put {
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        wal.tear_tail(3).unwrap();
        let replay = wal.replay().unwrap();
        assert!(replay.torn_tail);
        assert!(replay.repaired_bytes > 0);
        assert_eq!(replay.records.len(), 1, "only the complete record survives");
    }

    #[test]
    fn bit_flip_detected_by_crc() {
        let storage = MemStorage::new();
        let handle = storage.handle();
        let mut wal = Wal::with_storage(Box::new(storage)).unwrap();
        wal.append(&WalRecord::Put {
            key: b"abc".to_vec(),
            value: b"def".to_vec(),
        })
        .unwrap();
        let len = handle.current_bytes().len() as u64;
        handle.corrupt(len - 1, 0xFF);
        let replay = wal.replay().unwrap();
        assert!(replay.torn_tail);
        assert!(replay.records.is_empty());
    }

    #[test]
    fn lsns_resume_after_replay() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Checkpoint).unwrap();
        wal.append(&WalRecord::Delete { key: b"x".to_vec() })
            .unwrap();
        wal.replay().unwrap();
        let lsn = wal.append(&WalRecord::Checkpoint).unwrap();
        assert_eq!(lsn, 3);
    }

    #[test]
    fn file_backed_wal_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("memex-wal-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open_file(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            })
            .unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open_file(&path).unwrap();
            let replay = wal.replay().unwrap();
            assert_eq!(replay.records.len(), 1);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Regression: a failed (torn) append used to strand every later
    /// record behind mid-log garbage, because new frames were written at
    /// the physical end of the file while replay stopped at the tear.
    #[test]
    fn append_after_failed_append_overwrites_garbage() {
        let storage = FaultyStorage::new(MemStorage::new(), FaultConfig::default());
        let ctl = storage.control();
        let mut wal = Wal::with_storage(Box::new(storage)).unwrap();
        wal.append(&WalRecord::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        })
        .unwrap();
        // This append tears partway through its frame and errors.
        ctl.tear_next_write(5);
        assert!(wal
            .append(&WalRecord::Put {
                key: b"torn".to_vec(),
                value: b"torn".to_vec(),
            })
            .is_err());
        // The next append must overwrite the torn bytes, not follow them.
        wal.append(&WalRecord::Put {
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        let replay = wal.replay().unwrap();
        let keys: Vec<&[u8]> = replay
            .records
            .iter()
            .map(|(_, r)| match r {
                WalRecord::Put { key, .. } => key.as_slice(),
                _ => panic!("unexpected record"),
            })
            .collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b".as_slice()]);
    }

    /// The documented LSN contract: torn (never-durable) frames may have
    /// their LSNs reused after recovery, but a replayed log never contains
    /// duplicate LSNs, and durable frames keep theirs.
    #[test]
    fn lsn_reuse_is_confined_to_torn_frames() {
        let storage = MemStorage::new();
        let handle = storage.handle();
        let mut wal = Wal::with_storage(Box::new(storage)).unwrap();
        let l1 = wal
            .append(&WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
        let l2 = wal
            .append(&WalRecord::Put {
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            })
            .unwrap();
        assert_eq!((l1, l2), (1, 2));
        wal.tear_tail(3).unwrap(); // frame 2 now torn — was never durable
        let replay = wal.replay().unwrap();
        assert!(replay.torn_tail);
        // The torn frame's LSN is reused — allowed, it was never durable.
        let l2_again = wal
            .append(&WalRecord::Put {
                key: b"c".to_vec(),
                value: b"3".to_vec(),
            })
            .unwrap();
        assert_eq!(l2_again, 2);
        // A reopened log replays unique, strictly increasing LSNs.
        let mut wal2 =
            Wal::with_storage(Box::new(MemStorage::from_bytes(handle.current_bytes()))).unwrap();
        let replay = wal2.replay().unwrap();
        assert!(!replay.torn_tail, "repair removed the torn bytes");
        let lsns: Vec<u64> = replay.records.iter().map(|&(l, _)| l).collect();
        assert_eq!(lsns, vec![1, 2]);
    }

    /// Replay repairs the log: after a torn tail is detected the garbage
    /// is physically truncated, so a second replay is clean.
    #[test]
    fn replay_repairs_torn_tail() {
        let mut wal = Wal::in_memory();
        for i in 0..3u8 {
            wal.append(&WalRecord::Put {
                key: vec![i],
                value: vec![i],
            })
            .unwrap();
        }
        wal.tear_tail(2).unwrap();
        let first = wal.replay().unwrap();
        assert!(first.torn_tail);
        assert_eq!(first.records.len(), 2);
        let second = wal.replay().unwrap();
        assert!(!second.torn_tail, "repair made the log clean");
        assert_eq!(second.records.len(), 2);
    }
}
