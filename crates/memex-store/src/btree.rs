//! A page-based B+Tree over the [`Pager`] — the ordered keyed heart of the
//! Berkeley-DB-style store (paper §3) holding term-level statistics.
//!
//! Design notes:
//!
//! * Keys and values are arbitrary byte strings (bounded by
//!   [`MAX_KEY_LEN`] / [`MAX_VALUE_LEN`] so any entry fits in a page even
//!   after a split).
//! * Nodes are materialised into an in-memory [`Node`] on read and
//!   re-serialised on write; pages are immutable byte snapshots, which keeps
//!   the on-disk format trivial to reason about and fuzz.
//! * Leaves are chained through `next` pointers, so range scans are a single
//!   descent plus a linked-list walk.
//! * Deletes do not rebalance: emptied leaves are unlinked lazily and an
//!   internal root with a single child collapses. This is the classic
//!   "free-at-empty" simplification (also used by several production
//!   engines); space is reclaimed through the pager's free list.

use std::ops::Bound;

use crate::codec::{get_bytes, get_u64, get_uvarint, put_bytes, put_u64, put_uvarint};
use memex_obs::{Counter, MetricsRegistry};

use crate::error::{StoreError, StoreResult};
use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::pager::Pager;

/// Maximum key length in bytes.
pub const MAX_KEY_LEN: usize = 512;
/// Maximum value length in bytes.
pub const MAX_VALUE_LEN: usize = 2048;

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// In-memory form of a tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf {
        /// Sorted `(key, value)` entries.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// Right sibling for range scans, or [`NO_PAGE`].
        next: PageId,
    },
    Internal {
        /// `children.len() == keys.len() + 1`; `keys[i]` is the smallest key
        /// reachable under `children[i + 1]`.
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        match self {
            Node::Leaf { entries, next } => {
                out.push(TAG_LEAF);
                put_u64(&mut out, *next);
                put_uvarint(&mut out, entries.len() as u64);
                for (k, v) in entries {
                    put_bytes(&mut out, k);
                    put_bytes(&mut out, v);
                }
            }
            Node::Internal { keys, children } => {
                out.push(TAG_INTERNAL);
                put_uvarint(&mut out, children.len() as u64);
                for c in children {
                    put_u64(&mut out, *c);
                }
                for k in keys {
                    put_bytes(&mut out, k);
                }
            }
        }
        out
    }

    fn deserialize(bytes: &[u8]) -> StoreResult<Node> {
        let mut pos = 0usize;
        let tag = *bytes
            .get(pos)
            .ok_or_else(|| StoreError::Corrupt("empty node page".into()))?;
        pos += 1;
        match tag {
            TAG_LEAF => {
                let next = get_u64(bytes, &mut pos)?;
                let n = get_uvarint(bytes, &mut pos)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = get_bytes(bytes, &mut pos)?.to_vec();
                    let v = get_bytes(bytes, &mut pos)?.to_vec();
                    entries.push((k, v));
                }
                Ok(Node::Leaf { entries, next })
            }
            TAG_INTERNAL => {
                let n = get_uvarint(bytes, &mut pos)? as usize;
                if n == 0 {
                    return Err(StoreError::Corrupt("internal node with no children".into()));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(get_u64(bytes, &mut pos)?);
                }
                let mut keys = Vec::with_capacity(n - 1);
                for _ in 0..n - 1 {
                    keys.push(get_bytes(bytes, &mut pos)?.to_vec());
                }
                Ok(Node::Internal { keys, children })
            }
            t => Err(StoreError::Corrupt(format!("unknown node tag {t}"))),
        }
    }

    fn serialized_len(&self) -> usize {
        // A touch conservative (varints counted at full width) but cheap.
        match self {
            Node::Leaf { entries, .. } => {
                1 + 8
                    + 10
                    + entries
                        .iter()
                        .map(|(k, v)| k.len() + v.len() + 10)
                        .sum::<usize>()
            }
            Node::Internal { keys, children } => {
                1 + 10 + children.len() * 8 + keys.iter().map(|k| k.len() + 5).sum::<usize>()
            }
        }
    }

    fn overflows(&self) -> bool {
        self.serialized_len() > PAGE_SIZE
    }
}

/// Result of inserting into a subtree: the child split, producing a new
/// right sibling whose subtree starts at `sep_key`.
struct Split {
    sep_key: Vec<u8>,
    right: PageId,
}

/// Obs handles (inert until [`BTree::attach_registry`] is called).
#[derive(Default)]
struct BTreeMetrics {
    splits: Counter,
    root_growth: Counter,
}

/// A B+Tree rooted in the pager's registered root page.
pub struct BTree {
    root: PageId,
    metrics: BTreeMetrics,
}

impl BTree {
    /// Open the tree registered in `pager`, creating an empty one if absent.
    pub fn open(pager: &mut Pager) -> StoreResult<BTree> {
        if let Some(root) = pager.root() {
            return Ok(BTree {
                root,
                metrics: BTreeMetrics::default(),
            });
        }
        let root = pager.allocate()?;
        write_node(
            pager,
            root,
            &Node::Leaf {
                entries: Vec::new(),
                next: NO_PAGE,
            },
        )?;
        pager.set_root(root);
        Ok(BTree {
            root,
            metrics: BTreeMetrics::default(),
        })
    }

    /// Register this tree's counters with `registry` (`store.btree.*`).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = BTreeMetrics {
            splits: registry.counter("store.btree.splits"),
            root_growth: registry.counter("store.btree.root_growth"),
        };
    }

    /// Look up `key`.
    pub fn get(&self, pager: &mut Pager, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let mut page_id = self.root;
        loop {
            match read_node(pager, page_id)? {
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .and_then(|i| entries.get(i))
                        .map(|(_, v)| v.clone()));
                }
                Node::Internal { keys, children } => {
                    page_id = child_page(&keys, &children, key)?;
                }
            }
        }
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(
        &mut self,
        pager: &mut Pager,
        key: &[u8],
        value: &[u8],
    ) -> StoreResult<Option<Vec<u8>>> {
        if key.is_empty() {
            return Err(StoreError::Invalid("empty keys are not allowed".into()));
        }
        if key.len() > MAX_KEY_LEN {
            return Err(StoreError::TooLarge {
                what: "key",
                len: key.len(),
                max: MAX_KEY_LEN,
            });
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(StoreError::TooLarge {
                what: "value",
                len: value.len(),
                max: MAX_VALUE_LEN,
            });
        }
        let (old, split) = self.insert_rec(pager, self.root, key, value)?;
        if let Some(split) = split {
            // Grow a new root.
            self.metrics.root_growth.inc();
            let new_root = pager.allocate()?;
            let node = Node::Internal {
                keys: vec![split.sep_key],
                children: vec![self.root, split.right],
            };
            write_node(pager, new_root, &node)?;
            self.root = new_root;
            pager.set_root(new_root);
        }
        Ok(old)
    }

    /// Remove `key`; returns the removed value if present.
    pub fn delete(&mut self, pager: &mut Pager, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let old = self.delete_rec(pager, self.root, key)?;
        // Collapse a root that has become a single-child internal node.
        loop {
            match read_node(pager, self.root)? {
                Node::Internal { children, .. } if children.len() == 1 => {
                    let Some(&only) = children.first() else { break };
                    pager.free(self.root);
                    self.root = only;
                    pager.set_root(only);
                }
                _ => break,
            }
        }
        Ok(old)
    }

    /// Visit every `(key, value)` with `start <= key` (per `bounds`) in
    /// order, until the callback returns `false` or the range is exhausted.
    pub fn for_each_range<F>(
        &self,
        pager: &mut Pager,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        mut f: F,
    ) -> StoreResult<()>
    where
        F: FnMut(&[u8], &[u8]) -> bool,
    {
        // Find the leaf where the range starts.
        let start_key: &[u8] = match start {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let mut page_id = self.root;
        while let Node::Internal { keys, children } = read_node(pager, page_id)? {
            page_id = child_page(&keys, &children, start_key)?;
        }
        let mut current = page_id;
        loop {
            let (entries, next) = match read_node(pager, current)? {
                Node::Leaf { entries, next } => (entries, next),
                Node::Internal { .. } => {
                    return Err(StoreError::Corrupt(
                        "leaf chain reached internal node".into(),
                    ))
                }
            };
            for (k, v) in &entries {
                let after_start = match start {
                    Bound::Included(s) => k.as_slice() >= s,
                    Bound::Excluded(s) => k.as_slice() > s,
                    Bound::Unbounded => true,
                };
                if !after_start {
                    continue;
                }
                let before_end = match end {
                    Bound::Included(e) => k.as_slice() <= e,
                    Bound::Excluded(e) => k.as_slice() < e,
                    Bound::Unbounded => true,
                };
                if !before_end {
                    return Ok(());
                }
                if !f(k, v) {
                    return Ok(());
                }
            }
            if next == NO_PAGE {
                return Ok(());
            }
            current = next;
        }
    }

    /// Collect an inclusive-by-default range into a vector.
    pub fn scan(
        &self,
        pager: &mut Pager,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(pager, start, end, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Count all entries (full scan; callers cache this).
    pub fn count(&self, pager: &mut Pager) -> StoreResult<u64> {
        let mut n = 0u64;
        self.for_each_range(pager, Bound::Unbounded, Bound::Unbounded, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Structural invariant check used by tests: keys sorted within nodes,
    /// separator keys consistent with subtrees, all leaves at equal depth.
    pub fn check_invariants(&self, pager: &mut Pager) -> StoreResult<()> {
        fn rec(
            pager: &mut Pager,
            page: PageId,
            lo: Option<&[u8]>,
            hi: Option<&[u8]>,
        ) -> StoreResult<usize> {
            match read_node(pager, page)? {
                Node::Leaf { entries, .. } => {
                    for w in entries.windows(2) {
                        let [a, b] = w else { continue };
                        if a.0 >= b.0 {
                            return Err(StoreError::Corrupt("leaf keys out of order".into()));
                        }
                    }
                    for (k, _) in &entries {
                        if let Some(lo) = lo {
                            if k.as_slice() < lo {
                                return Err(StoreError::Corrupt("leaf key below bound".into()));
                            }
                        }
                        if let Some(hi) = hi {
                            if k.as_slice() >= hi {
                                return Err(StoreError::Corrupt("leaf key above bound".into()));
                            }
                        }
                    }
                    Ok(1)
                }
                Node::Internal { keys, children } => {
                    if children.len() != keys.len() + 1 {
                        return Err(StoreError::Corrupt("internal fan-out mismatch".into()));
                    }
                    for w in keys.windows(2) {
                        let [a, b] = w else { continue };
                        if a >= b {
                            return Err(StoreError::Corrupt("separators out of order".into()));
                        }
                    }
                    let mut depth = None;
                    for (i, &child) in children.iter().enumerate() {
                        let lo_i = if i == 0 {
                            lo
                        } else {
                            keys.get(i - 1).map(|k| k.as_slice())
                        };
                        let hi_i = if i == keys.len() {
                            hi
                        } else {
                            keys.get(i).map(|k| k.as_slice())
                        };
                        let d = rec(pager, child, lo_i, hi_i)?;
                        match depth {
                            None => depth = Some(d),
                            Some(prev) if prev != d => {
                                return Err(StoreError::Corrupt("uneven leaf depth".into()))
                            }
                            _ => {}
                        }
                    }
                    Ok(depth.unwrap_or(0) + 1)
                }
            }
        }
        rec(pager, self.root, None, None).map(|_| ())
    }

    fn insert_rec(
        &mut self,
        pager: &mut Pager,
        page: PageId,
        key: &[u8],
        value: &[u8],
    ) -> StoreResult<(Option<Vec<u8>>, Option<Split>)> {
        let node = read_node(pager, page)?;
        match node {
            Node::Leaf { mut entries, next } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries
                        .get_mut(i)
                        .map(|e| std::mem::replace(&mut e.1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let node = Node::Leaf { entries, next };
                if !node.overflows() {
                    write_node(pager, page, &node)?;
                    return Ok((old, None));
                }
                // Split the leaf near the byte-size midpoint.
                let (mut entries, next) = match node {
                    Node::Leaf { entries, next } => (entries, next),
                    Node::Internal { .. } => {
                        return Err(StoreError::Corrupt("leaf changed kind during split".into()))
                    }
                };
                let split_at = size_midpoint(entries.iter().map(|(k, v)| k.len() + v.len() + 10));
                let right_entries = entries.split_off(split_at.min(entries.len()));
                let left_entries = entries;
                let Some(first) = right_entries.first() else {
                    return Err(StoreError::Corrupt(
                        "leaf split produced an empty right".into(),
                    ));
                };
                let sep_key = first.0.clone();
                let right_page = pager.allocate()?;
                write_node(
                    pager,
                    right_page,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                write_node(
                    pager,
                    page,
                    &Node::Leaf {
                        entries: left_entries,
                        next: right_page,
                    },
                )?;
                self.metrics.splits.inc();
                Ok((
                    old,
                    Some(Split {
                        sep_key,
                        right: right_page,
                    }),
                ))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = child_index(&keys, key);
                let child = child_page(&keys, &children, key)?;
                let (old, split) = self.insert_rec(pager, child, key, value)?;
                if let Some(split) = split {
                    keys.insert(idx, split.sep_key);
                    children.insert(idx + 1, split.right);
                }
                let node = Node::Internal { keys, children };
                if !node.overflows() {
                    write_node(pager, page, &node)?;
                    return Ok((old, None));
                }
                let (mut keys, mut children) = match node {
                    Node::Internal { keys, children } => (keys, children),
                    Node::Leaf { .. } => {
                        return Err(StoreError::Corrupt(
                            "internal changed kind during split".into(),
                        ))
                    }
                };
                // Split: promote the median separator.
                let mid = keys.len() / 2;
                let mut right_keys = keys.split_off(mid.min(keys.len()));
                if right_keys.is_empty() {
                    return Err(StoreError::Corrupt(
                        "internal split with no separator".into(),
                    ));
                }
                let sep_key = right_keys.remove(0);
                let left_keys = keys;
                let right_children = children.split_off((mid + 1).min(children.len()));
                let left_children = children;
                let right_page = pager.allocate()?;
                write_node(
                    pager,
                    right_page,
                    &Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )?;
                write_node(
                    pager,
                    page,
                    &Node::Internal {
                        keys: left_keys,
                        children: left_children,
                    },
                )?;
                self.metrics.splits.inc();
                Ok((
                    old,
                    Some(Split {
                        sep_key,
                        right: right_page,
                    }),
                ))
            }
        }
    }

    fn delete_rec(
        &mut self,
        pager: &mut Pager,
        page: PageId,
        key: &[u8],
    ) -> StoreResult<Option<Vec<u8>>> {
        match read_node(pager, page)? {
            Node::Leaf { mut entries, next } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let (_, v) = entries.remove(i);
                        write_node(pager, page, &Node::Leaf { entries, next })?;
                        Ok(Some(v))
                    }
                    Err(_) => Ok(None),
                }
            }
            Node::Internal { keys, children } => {
                let child = child_page(&keys, &children, key)?;
                self.delete_rec(pager, child, key)
            }
        }
    }
}

/// Child page that can contain `key`, as a typed error on corrupt fan-out
/// (`children.len()` must be `keys.len() + 1`) instead of a panic.
fn child_page(keys: &[Vec<u8>], children: &[PageId], key: &[u8]) -> StoreResult<PageId> {
    children
        .get(child_index(keys, key))
        .copied()
        .ok_or_else(|| StoreError::Corrupt("internal node fan-out too small for key".into()))
}

/// Index of the child subtree that can contain `key`.
fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
        // Separator equals the key: the key lives in the right subtree.
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Split position that best balances total byte size.
fn size_midpoint<I: Iterator<Item = usize>>(sizes: I) -> usize {
    let sizes: Vec<usize> = sizes.collect();
    let total: usize = sizes.iter().sum();
    let mut acc = 0usize;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if acc * 2 >= total {
            // Never produce an empty side.
            return (i + 1).clamp(1, sizes.len() - 1);
        }
    }
    (sizes.len() / 2).max(1)
}

fn read_node(pager: &mut Pager, id: PageId) -> StoreResult<Node> {
    let page = pager.read(id)?;
    Node::deserialize(page.bytes())
}

fn write_node(pager: &mut Pager, id: PageId, node: &Node) -> StoreResult<()> {
    let bytes = node.serialize();
    if bytes.len() > PAGE_SIZE {
        return Err(StoreError::Corrupt(format!(
            "node serialises to {} bytes > page size",
            bytes.len()
        )));
    }
    let mut page = Page::zeroed();
    page.write_prefix(&bytes);
    pager.write(id, page);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_tree() -> (Pager, BTree) {
        let mut pager = Pager::in_memory(64);
        let tree = BTree::open(&mut pager).unwrap();
        (pager, tree)
    }

    #[test]
    fn insert_get_small() {
        let (mut pager, mut tree) = mem_tree();
        assert!(tree.insert(&mut pager, b"alpha", b"1").unwrap().is_none());
        assert!(tree.insert(&mut pager, b"beta", b"2").unwrap().is_none());
        assert_eq!(tree.get(&mut pager, b"alpha").unwrap().unwrap(), b"1");
        assert_eq!(tree.get(&mut pager, b"beta").unwrap().unwrap(), b"2");
        assert!(tree.get(&mut pager, b"gamma").unwrap().is_none());
    }

    #[test]
    fn replace_returns_old_value() {
        let (mut pager, mut tree) = mem_tree();
        tree.insert(&mut pager, b"k", b"v1").unwrap();
        let old = tree.insert(&mut pager, b"k", b"v2").unwrap();
        assert_eq!(old.unwrap(), b"v1");
        assert_eq!(tree.get(&mut pager, b"k").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn many_inserts_split_and_stay_ordered() {
        let (mut pager, mut tree) = mem_tree();
        let n = 3000u32;
        for i in 0..n {
            let key = format!("url:{:08}", (u64::from(i) * 2_654_435_761) % u64::from(n)); // scrambled order
            tree.insert(&mut pager, key.as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        tree.check_invariants(&mut pager).unwrap();
        assert_eq!(tree.count(&mut pager).unwrap(), u64::from(n));
        let all = tree
            .scan(&mut pager, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert!(
            all.windows(2).all(|w| w[0].0 < w[1].0),
            "scan must be sorted"
        );
    }

    #[test]
    fn range_scans_respect_bounds() {
        let (mut pager, mut tree) = mem_tree();
        for i in 0..100u32 {
            tree.insert(&mut pager, format!("k{:03}", i).as_bytes(), b"x")
                .unwrap();
        }
        let hits = tree
            .scan(
                &mut pager,
                Bound::Included(b"k010".as_ref()),
                Bound::Excluded(b"k020".as_ref()),
            )
            .unwrap();
        assert_eq!(hits.len(), 10);
        assert_eq!(hits[0].0, b"k010");
        assert_eq!(hits[9].0, b"k019");
        let hits = tree
            .scan(
                &mut pager,
                Bound::Excluded(b"k097".as_ref()),
                Bound::Unbounded,
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn delete_removes_and_tree_survives() {
        let (mut pager, mut tree) = mem_tree();
        for i in 0..500u32 {
            tree.insert(
                &mut pager,
                format!("k{:05}", i).as_bytes(),
                &i.to_le_bytes(),
            )
            .unwrap();
        }
        for i in (0..500u32).step_by(2) {
            let old = tree
                .delete(&mut pager, format!("k{:05}", i).as_bytes())
                .unwrap();
            assert!(old.is_some());
        }
        tree.check_invariants(&mut pager).unwrap();
        assert_eq!(tree.count(&mut pager).unwrap(), 250);
        assert!(tree.get(&mut pager, b"k00000").unwrap().is_none());
        assert!(tree.get(&mut pager, b"k00001").unwrap().is_some());
        assert!(tree.delete(&mut pager, b"missing").unwrap().is_none());
    }

    #[test]
    fn big_values_split_correctly() {
        let (mut pager, mut tree) = mem_tree();
        let big = vec![0xAB; MAX_VALUE_LEN];
        for i in 0..64u32 {
            tree.insert(&mut pager, format!("big{:04}", i).as_bytes(), &big)
                .unwrap();
        }
        tree.check_invariants(&mut pager).unwrap();
        for i in 0..64u32 {
            assert_eq!(
                tree.get(&mut pager, format!("big{:04}", i).as_bytes())
                    .unwrap()
                    .unwrap(),
                big
            );
        }
    }

    #[test]
    fn limits_are_enforced() {
        let (mut pager, mut tree) = mem_tree();
        assert!(tree.insert(&mut pager, &[], b"v").is_err());
        assert!(tree
            .insert(&mut pager, &vec![1u8; MAX_KEY_LEN + 1], b"v")
            .is_err());
        assert!(tree
            .insert(&mut pager, b"k", &vec![1u8; MAX_VALUE_LEN + 1])
            .is_err());
    }

    #[test]
    fn persists_through_file_backing() {
        let mut path = std::env::temp_dir();
        path.push(format!("memex-btree-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut pager = Pager::open_file(&path, 16).unwrap();
            let mut tree = BTree::open(&mut pager).unwrap();
            for i in 0..800u32 {
                tree.insert(
                    &mut pager,
                    format!("p{:05}", i).as_bytes(),
                    &i.to_le_bytes(),
                )
                .unwrap();
            }
            pager.flush().unwrap();
        }
        {
            let mut pager = Pager::open_file(&path, 16).unwrap();
            let tree = BTree::open(&mut pager).unwrap();
            assert_eq!(tree.count(&mut pager).unwrap(), 800);
            assert_eq!(
                tree.get(&mut pager, b"p00417").unwrap().unwrap(),
                417u32.to_le_bytes()
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
