//! Immutable sorted runs: the on-disk unit of the LSM engine.
//!
//! A run is a sealed memtable (or a compaction merge): a sorted list of
//! `(key, value-or-tombstone)` entries written as one buffer, synced, and
//! never modified again. Immutability is what makes MVCC cheap — a
//! snapshot pins a run *set* by holding `Arc<Run>`s, and compaction can
//! replace the set without touching the bytes a reader is using.
//!
//! File format (all little-endian via [`codec`](crate::codec)):
//!
//! ```text
//! [magic u32][version u32][count u32]
//! count * ( [flag uvarint: 0=tombstone 1=value] [key bytes] [value bytes]? )
//! [crc32 u32 over everything before it]
//! ```
//!
//! A run referenced by the manifest was synced before the manifest record
//! that names it, so a decode failure there is [`StoreError::Corrupt`] —
//! never silently skipped. Partially-written files a crash leaves behind
//! are *not* referenced and are deleted by recovery (the orphan scan).

use crate::codec::{crc32, get_bytes, get_u32, get_uvarint, put_bytes, put_u32, put_uvarint};
use crate::error::{StoreError, StoreResult};
use crate::vfs::Storage;

const MAGIC: u32 = 0x4D58_524E; // "MXRN"
const VERSION: u32 = 1;

/// One sealed run: `id` names the file, `entries` are sorted by key with
/// `None` marking a tombstone, `bytes` is the encoded size.
pub struct Run {
    pub id: u64,
    pub entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    pub bytes: u64,
}

impl Run {
    /// File name for run `id` (zero-padded so directory listings sort in
    /// id order).
    pub fn file_name(id: u64) -> String {
        format!("run-{id:08}")
    }

    /// Parse a run file name back to its id; `None` for non-run files.
    pub fn parse_file_name(name: &str) -> Option<u64> {
        name.strip_prefix("run-")?.parse().ok()
    }

    /// Point lookup inside this run. `Some(None)` is a tombstone hit —
    /// the key is deleted and older runs must not be consulted.
    pub fn get(&self, key: &[u8]) -> Option<&Option<Vec<u8>>> {
        let idx = self
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()?;
        self.entries.get(idx).map(|(_, v)| v)
    }

    /// Index of the first entry with key >= `key`.
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        self.entries.partition_point(|(k, _)| k.as_slice() < key)
    }

    /// Encode, write at offset 0, and sync `storage`. Entries must be
    /// sorted by strictly ascending key.
    pub fn write(
        id: u64,
        entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
        storage: &mut dyn Storage,
    ) -> StoreResult<Run> {
        let mut out = Vec::new();
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, VERSION);
        let count = u32::try_from(entries.len()).map_err(|_| StoreError::TooLarge {
            what: "run entry count",
            len: entries.len(),
            max: u32::MAX as usize,
        })?;
        put_u32(&mut out, count);
        for (key, value) in &entries {
            match value {
                Some(v) => {
                    put_uvarint(&mut out, 1);
                    put_bytes(&mut out, key);
                    put_bytes(&mut out, v);
                }
                None => {
                    put_uvarint(&mut out, 0);
                    put_bytes(&mut out, key);
                }
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        storage.set_len(0)?;
        storage.write_all_at(0, &out)?;
        storage.sync()?;
        Ok(Run {
            id,
            entries,
            bytes: out.len() as u64,
        })
    }

    /// Load and verify a run from `storage`. Any framing, checksum, or
    /// ordering problem is `Corrupt` — callers decide whether that means
    /// a fatal manifest inconsistency or a deletable orphan.
    pub fn load(id: u64, storage: &mut dyn Storage) -> StoreResult<Run> {
        let len = storage.len()?;
        let len_usize = usize::try_from(len)
            .map_err(|_| StoreError::Corrupt(format!("oversized frame: {len} bytes")))?;
        if len_usize < 16 {
            return Err(StoreError::Corrupt(format!(
                "run {id}: file too short ({len_usize} bytes)"
            )));
        }
        let mut buf = vec![0u8; len_usize];
        storage.read_exact_at(0, &mut buf)?;
        let body_len = len_usize - 4;
        let mut tail_pos = body_len;
        let stored_crc = get_u32(&buf, &mut tail_pos)?;
        let body = buf
            .get(..body_len)
            .ok_or_else(|| StoreError::Corrupt(format!("run {id}: truncated body")))?;
        if crc32(body) != stored_crc {
            return Err(StoreError::Corrupt(format!("run {id}: checksum mismatch")));
        }
        let mut pos = 0usize;
        let magic = get_u32(body, &mut pos)?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt(format!("run {id}: bad magic")));
        }
        let version = get_u32(body, &mut pos)?;
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "run {id}: unsupported version {version}"
            )));
        }
        let count = get_u32(body, &mut pos)? as usize;
        let mut entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::with_capacity(count);
        for _ in 0..count {
            let flag = get_uvarint(body, &mut pos)?;
            let key = get_bytes(body, &mut pos)?.to_vec();
            let value = match flag {
                0 => None,
                1 => Some(get_bytes(body, &mut pos)?.to_vec()),
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "run {id}: bad entry flag {other}"
                    )))
                }
            };
            if let Some((prev, _)) = entries.last() {
                if prev.as_slice() >= key.as_slice() {
                    return Err(StoreError::Corrupt(format!("run {id}: keys out of order")));
                }
            }
            entries.push((key, value));
        }
        if pos != body_len {
            return Err(StoreError::Corrupt(format!(
                "run {id}: {} trailing bytes",
                body_len - pos
            )));
        }
        Ok(Run {
            id,
            entries,
            bytes: len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemStorage;

    fn sample() -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        vec![
            (b"alpha".to_vec(), Some(b"1".to_vec())),
            (b"beta".to_vec(), None),
            (b"gamma".to_vec(), Some(b"33".to_vec())),
        ]
    }

    #[test]
    fn write_load_round_trip() {
        let mut s = MemStorage::new();
        let written = Run::write(7, sample(), &mut s).unwrap();
        let loaded = Run::load(7, &mut s).unwrap();
        assert_eq!(loaded.entries, sample());
        assert_eq!(loaded.bytes, written.bytes);
        assert_eq!(loaded.get(b"alpha"), Some(&Some(b"1".to_vec())));
        assert_eq!(loaded.get(b"beta"), Some(&None), "tombstone visible");
        assert_eq!(loaded.get(b"delta"), None);
    }

    #[test]
    fn corruption_is_detected() {
        let mut s = MemStorage::new();
        let h = s.handle();
        Run::write(1, sample(), &mut s).unwrap();
        h.corrupt(14, 0xFF);
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn truncated_file_is_corrupt() {
        let mut s = MemStorage::new();
        Run::write(1, sample(), &mut s).unwrap();
        let len = s.len().unwrap();
        s.set_len(len - 3).unwrap();
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
        s.set_len(4).unwrap();
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn unsorted_entries_rejected_at_load() {
        let mut s = MemStorage::new();
        let entries = vec![
            (b"b".to_vec(), Some(b"1".to_vec())),
            (b"a".to_vec(), Some(b"2".to_vec())),
        ];
        Run::write(1, entries, &mut s).unwrap();
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn file_names_sort_by_id() {
        assert_eq!(Run::file_name(3), "run-00000003");
        assert_eq!(Run::parse_file_name("run-00000003"), Some(3));
        assert_eq!(Run::parse_file_name("manifest"), None);
        assert!(Run::file_name(9) < Run::file_name(10));
    }
}
