//! Immutable sorted runs: the on-disk unit of the LSM engine.
//!
//! A run is a sealed memtable (or a compaction merge): a sorted list of
//! `(key, value-or-tombstone)` entries written as one buffer, synced, and
//! never modified again. Immutability is what makes MVCC cheap — a
//! snapshot pins a run *set* by holding `Arc<Run>`s, and compaction can
//! replace the set without touching the bytes a reader is using.
//!
//! Format v2 adds the two read-amplification guards tiered compaction
//! needs: a **bloom filter** over the keys (seeded FNV-1a base hash with
//! a SplitMix64-derived second hash, double hashing) so a point lookup
//! skips runs that cannot contain the key, and a **sparse index** of
//! every block's first key, so a lookup that does consult the run decodes
//! one small block instead of binary-searching materialized entries. The
//! entries themselves stay encoded in one contiguous buffer — the run no
//! longer holds a `Vec` of per-entry allocations resident.
//!
//! File format (all little-endian via [`codec`](crate::codec)):
//!
//! ```text
//! v1: [magic u32][version=1 u32][count u32]
//!     count * entry
//!     [crc32 u32 over everything before it]
//!
//! v2: [magic u32][version=2 u32][count u32][data_len u32]
//!     data:  count * entry                      (blocked every BLOCK_ENTRIES)
//!     index: [n_blocks u32] n_blocks * ( [offset u32][count u32][first_key bytes] )
//!     bloom: [seed u64][k u32][nbits u64][n_words u32] n_words * [word u64]
//!     [crc32 u32 over everything before it]
//!
//! entry: [flag uvarint: 0=tombstone 1=value] [key bytes] [value bytes]?
//! ```
//!
//! v1 runs still load: the entry region is identical, so the loader
//! re-blocks it in memory and rebuilds the bloom + index on the fly. The
//! run remembers its on-disk [`Run::format`]; the next compaction that
//! consumes it writes v2, upgrading the file population without a
//! migration pass.
//!
//! A run referenced by the manifest was synced before the manifest record
//! that names it, so a decode failure there is [`StoreError::Corrupt`] —
//! never silently skipped. Partially-written files a crash leaves behind
//! are *not* referenced and are deleted by recovery (the orphan scan).

use crate::codec::{
    crc32, get_bytes, get_u32, get_u64, get_uvarint, put_bytes, put_u32, put_u64, put_uvarint,
};
use crate::error::{StoreError, StoreResult};
use crate::vfs::Storage;

const MAGIC: u32 = 0x4D58_524E; // "MXRN"
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Entries per sparse-index block: small enough that the linear decode
/// inside one block is a handful of key compares, large enough that the
/// index stays a fraction of the data size.
const BLOCK_ENTRIES: u32 = 16;

/// Bloom bits per key (~1% false-positive rate with `BLOOM_K` probes).
const BLOOM_BITS_PER_KEY: u64 = 10;
const BLOOM_K: u32 = 7;

// ---------------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: cheap avalanche used both to derive the per-run
/// bloom seed from the run id and as the second hash of the double-hash
/// probe sequence.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over `key`. Computed once per lookup (not once per run): each
/// run's bloom mixes its own seed into this base hash afterwards, so a
/// 16-run stack pays one byte walk, not sixteen.
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A per-run bloom filter. Double hashing: probe `i` tests the bit
/// multiply-shift-reduced from `h1 + i*h2`, with `h1` the seed-mixed key
/// hash and `h2` SplitMix64-derived (forced odd so the probe sequence
/// covers the table).
pub struct Bloom {
    seed: u64,
    k: u32,
    nbits: u64,
    words: Vec<u64>,
}

impl Bloom {
    /// The deterministic seed for run `id` — recomputable at load, so a
    /// stored bloom whose seed disagrees is corruption, not a mystery.
    fn seed_for(id: u64) -> u64 {
        splitmix64(id ^ 0xA076_1D64_78BD_642F)
    }

    fn with_capacity(id: u64, count: usize) -> Bloom {
        let nbits = (count as u64)
            .saturating_mul(BLOOM_BITS_PER_KEY)
            .max(64)
            .next_multiple_of(64);
        Bloom {
            seed: Bloom::seed_for(id),
            k: BLOOM_K,
            nbits,
            words: vec![0u64; (nbits / 64) as usize],
        }
    }

    /// Per-run probe pair from the shared [`key_hash`]: mixing the seed
    /// in *after* the byte walk keeps the per-run cost to two finalizers.
    fn probes(&self, hash: u64) -> (u64, u64) {
        let h1 = splitmix64(hash ^ self.seed);
        let h2 = splitmix64(h1) | 1;
        (h1, h2)
    }

    /// Multiply-shift range reduction: maps `h` uniformly onto
    /// `0..nbits` without the 64-bit division a `%` would cost on every
    /// probe of every run.
    fn bit_index(h: u64, nbits: u64) -> u64 {
        ((u128::from(h) * u128::from(nbits)) >> 64) as u64
    }

    fn insert(&mut self, hash: u64) {
        let (h1, h2) = self.probes(hash);
        for i in 0..u64::from(self.k) {
            let bit = Bloom::bit_index(h1.wrapping_add(i.wrapping_mul(h2)), self.nbits);
            if let Some(word) = self.words.get_mut((bit / 64) as usize) {
                *word |= 1u64 << (bit % 64);
            }
        }
    }

    fn might_contain(&self, hash: u64) -> bool {
        let (h1, h2) = self.probes(hash);
        for i in 0..u64::from(self.k) {
            let bit = Bloom::bit_index(h1.wrapping_add(i.wrapping_mul(h2)), self.nbits);
            let word = self.words.get((bit / 64) as usize).copied().unwrap_or(0);
            if word & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.seed);
        put_u32(out, self.k);
        put_u64(out, self.nbits);
        put_u32(out, self.words.len() as u32);
        for w in &self.words {
            put_u64(out, *w);
        }
    }

    fn decode(id: u64, buf: &[u8], pos: &mut usize) -> StoreResult<Bloom> {
        let seed = get_u64(buf, pos)?;
        let k = get_u32(buf, pos)?;
        let nbits = get_u64(buf, pos)?;
        let n_words = get_u32(buf, pos)? as usize;
        if seed != Bloom::seed_for(id) || k == 0 || nbits == 0 || nbits != n_words as u64 * 64 {
            return Err(StoreError::Corrupt(format!(
                "run {id}: bloom parameters inconsistent"
            )));
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(get_u64(buf, pos)?);
        }
        Ok(Bloom {
            seed,
            k,
            nbits,
            words,
        })
    }
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

/// One sparse-index entry: where block `i` starts in the data region and
/// the first key it holds.
struct BlockMeta {
    offset: u32,
    count: u32,
    first_key: Vec<u8>,
}

/// The outcome of probing one run for a key — the three cases the
/// `store.lsm.bloom.{skip,hit,fp}` counters classify.
pub enum Probe<'a> {
    /// The run's key-range bounds or bloom filter excluded the key: the
    /// run's index was not consulted.
    Skip,
    /// The bloom admitted the key but the run does not hold it (a bloom
    /// false positive — the block decode was wasted).
    Miss,
    /// The key is in this run. `None` is a tombstone hit: the key is
    /// deleted and older runs must not be consulted.
    Hit(Option<&'a [u8]>),
}

/// One sealed run: `id` names the file; entries live encoded in `data`
/// (sorted by key, `None` = tombstone) behind a bloom filter and a sparse
/// block index; `bytes` is the on-disk size.
pub struct Run {
    pub id: u64,
    /// Encoded entries, contiguous, grouped into `BLOCK_ENTRIES` blocks.
    data: Vec<u8>,
    index: Vec<BlockMeta>,
    bloom: Bloom,
    /// Largest key in the run (derived at build/load, not stored): with
    /// the first index block's key it bounds the run's key range, so
    /// point lookups prune disjoint runs before touching the bloom.
    max_key: Vec<u8>,
    count: u32,
    pub bytes: u64,
    /// On-disk format version this run was loaded from (or written as).
    /// A v1 run is fully usable in memory; the next compaction that
    /// consumes it writes its output as v2.
    format: u32,
}

impl Run {
    /// File name for run `id` (zero-padded so directory listings sort in
    /// id order).
    pub fn file_name(id: u64) -> String {
        format!("run-{id:08}")
    }

    /// Parse a run file name back to its id; `None` for non-run files.
    pub fn parse_file_name(name: &str) -> Option<u64> {
        name.strip_prefix("run-")?.parse().ok()
    }

    /// Number of entries (tombstones included).
    pub fn entry_count(&self) -> usize {
        self.count as usize
    }

    /// The on-disk format version (1 or 2).
    pub fn format(&self) -> u32 {
        self.format
    }

    /// Decode the entry at `pos` (which must sit on an entry boundary
    /// inside `data`). The buffer was validated at construction, so a
    /// decode failure here means memory corruption; it ends iteration
    /// rather than panicking.
    fn decode_entry_at(&self, pos: &mut usize) -> Option<(&[u8], Option<&[u8]>)> {
        let flag = get_uvarint(&self.data, pos).ok()?;
        let key = get_bytes(&self.data, pos).ok()?;
        match flag {
            0 => Some((key, None)),
            1 => {
                let value = get_bytes(&self.data, pos).ok()?;
                Some((key, Some(value)))
            }
            _ => None,
        }
    }

    /// Point lookup: key-range bounds, then bloom, then a binary search
    /// over the sparse index, then a linear decode of one block.
    pub fn probe(&self, key: &[u8]) -> Probe<'_> {
        self.probe_hashed(key, key_hash(key))
    }

    /// [`probe`](Run::probe) with the key's [`key_hash`] precomputed —
    /// multi-run lookups hash once and reuse it across the whole stack.
    pub fn probe_hashed(&self, key: &[u8], hash: u64) -> Probe<'_> {
        match self.index.first() {
            None => return Probe::Skip,
            Some(first) if key < first.first_key.as_slice() => return Probe::Skip,
            _ => {}
        }
        if key > self.max_key.as_slice() {
            return Probe::Skip;
        }
        if !self.bloom.might_contain(hash) {
            return Probe::Skip;
        }
        // Last block whose first key is <= key is the only one that can
        // hold it.
        let idx = self
            .index
            .partition_point(|b| b.first_key.as_slice() <= key);
        if idx == 0 {
            return Probe::Miss;
        }
        let Some(block) = self.index.get(idx - 1) else {
            return Probe::Miss;
        };
        let mut pos = block.offset as usize;
        for _ in 0..block.count {
            let Some((k, v)) = self.decode_entry_at(&mut pos) else {
                return Probe::Miss;
            };
            match k.cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Probe::Hit(v),
                std::cmp::Ordering::Greater => return Probe::Miss,
            }
        }
        Probe::Miss
    }

    /// Iterate every entry in key order, zero-copy out of the data region.
    pub fn iter(&self) -> RunIter<'_> {
        RunIter { run: self, pos: 0 }
    }

    /// Iterate entries with key >= `key`: skip whole blocks via the
    /// sparse index, then decode-skip within the landing block.
    pub fn iter_from(&self, key: &[u8]) -> RunIter<'_> {
        let idx = self.index.partition_point(|b| b.first_key.as_slice() < key);
        let start = if idx == 0 {
            0
        } else {
            // The previous block may still contain entries >= key.
            self.index.get(idx - 1).map_or(0, |b| b.offset as usize)
        };
        let mut it = RunIter {
            run: self,
            pos: start,
        };
        // Linear skip inside at most one block.
        while let Some((k, _)) = it.peek() {
            if k >= key {
                break;
            }
            it.next();
        }
        it
    }

    /// Encode `entries` into the blocked data region plus its sparse
    /// index and bloom filter. Shared by the writer and the v1 loader.
    fn build(id: u64, entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> (Vec<u8>, Vec<BlockMeta>, Bloom) {
        let mut data = Vec::new();
        let mut index: Vec<BlockMeta> = Vec::new();
        let mut bloom = Bloom::with_capacity(id, entries.len());
        for (i, (key, value)) in entries.iter().enumerate() {
            if (i as u32).is_multiple_of(BLOCK_ENTRIES) {
                index.push(BlockMeta {
                    offset: data.len() as u32,
                    count: 0,
                    first_key: key.clone(),
                });
            }
            if let Some(last) = index.last_mut() {
                last.count += 1;
            }
            bloom.insert(key_hash(key));
            match value {
                Some(v) => {
                    put_uvarint(&mut data, 1);
                    put_bytes(&mut data, key);
                    put_bytes(&mut data, v);
                }
                None => {
                    put_uvarint(&mut data, 0);
                    put_bytes(&mut data, key);
                }
            }
        }
        (data, index, bloom)
    }

    /// Encode as format v2, write at offset 0, and sync `storage`.
    /// Entries must be sorted by strictly ascending key. The entry vector
    /// is transient: the returned run keeps only the encoded region.
    pub fn write(
        id: u64,
        entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
        storage: &mut dyn Storage,
    ) -> StoreResult<Run> {
        let count = u32::try_from(entries.len()).map_err(|_| StoreError::TooLarge {
            what: "run entry count",
            len: entries.len(),
            max: u32::MAX as usize,
        })?;
        let max_key = entries.last().map(|(k, _)| k.clone()).unwrap_or_default();
        let (data, index, bloom) = Run::build(id, &entries);
        drop(entries);
        let data_len = u32::try_from(data.len()).map_err(|_| StoreError::TooLarge {
            what: "run data region",
            len: data.len(),
            max: u32::MAX as usize,
        })?;
        let mut out = Vec::with_capacity(data.len() + 64);
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, VERSION_V2);
        put_u32(&mut out, count);
        put_u32(&mut out, data_len);
        out.extend_from_slice(&data);
        put_u32(&mut out, index.len() as u32);
        for b in &index {
            put_u32(&mut out, b.offset);
            put_u32(&mut out, b.count);
            put_bytes(&mut out, &b.first_key);
        }
        bloom.encode(&mut out);
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        storage.set_len(0)?;
        storage.write_all_at(0, &out)?;
        storage.sync()?;
        Ok(Run {
            id,
            data,
            index,
            bloom,
            max_key,
            count,
            bytes: out.len() as u64,
            format: VERSION_V2,
        })
    }

    /// Write the legacy v1 format. Test-only: exists so the crash harness
    /// can seed stores with v1 files and prove the upgrade path.
    #[doc(hidden)]
    pub fn write_v1(
        _id: u64,
        entries: &[(Vec<u8>, Option<Vec<u8>>)],
        storage: &mut dyn Storage,
    ) -> StoreResult<()> {
        let mut out = Vec::new();
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, VERSION_V1);
        let count = u32::try_from(entries.len()).map_err(|_| StoreError::TooLarge {
            what: "run entry count",
            len: entries.len(),
            max: u32::MAX as usize,
        })?;
        put_u32(&mut out, count);
        for (key, value) in entries {
            match value {
                Some(v) => {
                    put_uvarint(&mut out, 1);
                    put_bytes(&mut out, key);
                    put_bytes(&mut out, v);
                }
                None => {
                    put_uvarint(&mut out, 0);
                    put_bytes(&mut out, key);
                }
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        storage.set_len(0)?;
        storage.write_all_at(0, &out)?;
        storage.sync()?;
        Ok(())
    }

    /// Load and verify a run from `storage` (either format version). Any
    /// framing, checksum, or ordering problem is `Corrupt` — callers
    /// decide whether that means a fatal manifest inconsistency or a
    /// deletable orphan.
    pub fn load(id: u64, storage: &mut dyn Storage) -> StoreResult<Run> {
        let len = storage.len()?;
        let len_usize = usize::try_from(len)
            .map_err(|_| StoreError::Corrupt(format!("oversized frame: {len} bytes")))?;
        if len_usize < 16 {
            return Err(StoreError::Corrupt(format!(
                "run {id}: file too short ({len_usize} bytes)"
            )));
        }
        let mut buf = vec![0u8; len_usize];
        storage.read_exact_at(0, &mut buf)?;
        let body_len = len_usize - 4;
        let mut tail_pos = body_len;
        let stored_crc = get_u32(&buf, &mut tail_pos)?;
        let body = buf
            .get(..body_len)
            .ok_or_else(|| StoreError::Corrupt(format!("run {id}: truncated body")))?;
        if crc32(body) != stored_crc {
            return Err(StoreError::Corrupt(format!("run {id}: checksum mismatch")));
        }
        let mut pos = 0usize;
        let magic = get_u32(body, &mut pos)?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt(format!("run {id}: bad magic")));
        }
        let version = get_u32(body, &mut pos)?;
        let count = get_u32(body, &mut pos)?;
        let run = match version {
            VERSION_V1 => {
                // The v1 body after the header *is* the data region of a
                // v2 run: re-block it in memory and rebuild bloom + index.
                let data = body
                    .get(pos..)
                    .ok_or_else(|| StoreError::Corrupt(format!("run {id}: truncated body")))?
                    .to_vec();
                let (index, bloom, max_key) = Run::validate_data(id, &data, count, None)?;
                Run {
                    id,
                    data,
                    index,
                    bloom,
                    max_key,
                    count,
                    bytes: len,
                    format: VERSION_V1,
                }
            }
            VERSION_V2 => {
                let data_len = get_u32(body, &mut pos)? as usize;
                let data = body
                    .get(pos..pos + data_len)
                    .ok_or_else(|| StoreError::Corrupt(format!("run {id}: truncated data region")))?
                    .to_vec();
                pos += data_len;
                let n_blocks = get_u32(body, &mut pos)? as usize;
                let mut index = Vec::with_capacity(n_blocks);
                for _ in 0..n_blocks {
                    let offset = get_u32(body, &mut pos)?;
                    let bcount = get_u32(body, &mut pos)?;
                    let first_key = get_bytes(body, &mut pos)?.to_vec();
                    index.push(BlockMeta {
                        offset,
                        count: bcount,
                        first_key,
                    });
                }
                let bloom = Bloom::decode(id, body, &mut pos)?;
                if pos != body_len {
                    return Err(StoreError::Corrupt(format!(
                        "run {id}: {} trailing bytes",
                        body_len - pos
                    )));
                }
                // The stored index must agree with the data region (the
                // same walk v1 loads pay anyway — ordering is verified
                // either way).
                let (expected, _, max_key) = Run::validate_data(id, &data, count, Some(&index))?;
                Run {
                    id,
                    data,
                    index: expected,
                    bloom,
                    max_key,
                    count,
                    bytes: len,
                    format: VERSION_V2,
                }
            }
            other => {
                return Err(StoreError::Corrupt(format!(
                    "run {id}: unsupported version {other}"
                )))
            }
        };
        if version == VERSION_V1 && pos == 0 {
            // unreachable; keeps pos used under both branches
        }
        Ok(run)
    }

    /// Walk the data region: verify entry framing, strict key ordering
    /// and the entry count; rebuild the sparse index, bloom, and max
    /// key. When a stored index is given (v2 loads), it must match the
    /// recomputed one.
    fn validate_data(
        id: u64,
        data: &[u8],
        count: u32,
        stored_index: Option<&[BlockMeta]>,
    ) -> StoreResult<(Vec<BlockMeta>, Bloom, Vec<u8>)> {
        let mut pos = 0usize;
        let mut index: Vec<BlockMeta> = Vec::new();
        let mut bloom = Bloom::with_capacity(id, count as usize);
        let mut prev_key: Option<Vec<u8>> = None;
        for i in 0..count {
            let entry_off = pos;
            let flag = get_uvarint(data, &mut pos)?;
            let key = get_bytes(data, &mut pos)?;
            match flag {
                0 => {}
                1 => {
                    let _ = get_bytes(data, &mut pos)?;
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "run {id}: bad entry flag {other}"
                    )))
                }
            }
            if let Some(prev) = &prev_key {
                if prev.as_slice() >= key {
                    return Err(StoreError::Corrupt(format!("run {id}: keys out of order")));
                }
            }
            if i % BLOCK_ENTRIES == 0 {
                index.push(BlockMeta {
                    offset: entry_off as u32,
                    count: 0,
                    first_key: key.to_vec(),
                });
            }
            if let Some(last) = index.last_mut() {
                last.count += 1;
            }
            bloom.insert(key_hash(key));
            prev_key = Some(key.to_vec());
        }
        if pos != data.len() {
            return Err(StoreError::Corrupt(format!(
                "run {id}: {} trailing bytes",
                data.len() - pos
            )));
        }
        if let Some(stored) = stored_index {
            let matches = stored.len() == index.len()
                && stored.iter().zip(index.iter()).all(|(a, b)| {
                    a.offset == b.offset && a.count == b.count && a.first_key == b.first_key
                });
            if !matches {
                return Err(StoreError::Corrupt(format!(
                    "run {id}: sparse index disagrees with data region"
                )));
            }
        }
        Ok((index, bloom, prev_key.unwrap_or_default()))
    }
}

/// Streaming decoder over a run's data region. Yields entries in key
/// order, borrowing keys and values straight from the resident buffer.
pub struct RunIter<'a> {
    run: &'a Run,
    pos: usize,
}

impl<'a> RunIter<'a> {
    fn peek(&self) -> Option<(&'a [u8], Option<&'a [u8]>)> {
        if self.pos >= self.run.data.len() {
            return None;
        }
        let mut pos = self.pos;
        self.run.decode_entry_at(&mut pos)
    }
}

impl<'a> Iterator for RunIter<'a> {
    type Item = (&'a [u8], Option<&'a [u8]>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.run.data.len() {
            return None;
        }
        self.run.decode_entry_at(&mut self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemStorage;

    fn sample() -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        vec![
            (b"alpha".to_vec(), Some(b"1".to_vec())),
            (b"beta".to_vec(), None),
            (b"gamma".to_vec(), Some(b"33".to_vec())),
        ]
    }

    fn probe_value(run: &Run, key: &[u8]) -> Option<Option<Vec<u8>>> {
        match run.probe(key) {
            Probe::Hit(v) => Some(v.map(|x| x.to_vec())),
            Probe::Miss | Probe::Skip => None,
        }
    }

    fn collect(run: &Run) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        run.iter()
            .map(|(k, v)| (k.to_vec(), v.map(|x| x.to_vec())))
            .collect()
    }

    #[test]
    fn write_load_round_trip() {
        let mut s = MemStorage::new();
        let written = Run::write(7, sample(), &mut s).unwrap();
        let loaded = Run::load(7, &mut s).unwrap();
        assert_eq!(collect(&loaded), sample());
        assert_eq!(loaded.bytes, written.bytes);
        assert_eq!(loaded.format(), 2);
        assert_eq!(probe_value(&loaded, b"alpha"), Some(Some(b"1".to_vec())));
        assert_eq!(probe_value(&loaded, b"beta"), Some(None), "tombstone hit");
        assert_eq!(probe_value(&loaded, b"delta"), None);
    }

    #[test]
    fn v1_files_load_and_reblock() {
        let mut s = MemStorage::new();
        Run::write_v1(3, &sample(), &mut s).unwrap();
        let loaded = Run::load(3, &mut s).unwrap();
        assert_eq!(loaded.format(), 1, "remembers the on-disk version");
        assert_eq!(collect(&loaded), sample());
        assert_eq!(probe_value(&loaded, b"gamma"), Some(Some(b"33".to_vec())));
        assert_eq!(probe_value(&loaded, b"zzz"), None);
    }

    #[test]
    fn bloom_skips_absent_keys() {
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..200u32)
            .map(|i| (format!("key-{i:04}").into_bytes(), Some(vec![i as u8])))
            .collect();
        let mut s = MemStorage::new();
        let run = Run::write(11, entries, &mut s).unwrap();
        // Every present key must be admitted (no false negatives, ever).
        for i in 0..200u32 {
            let k = format!("key-{i:04}").into_bytes();
            assert!(
                matches!(run.probe(&k), Probe::Hit(Some(_))),
                "present key rejected"
            );
        }
        // Most absent keys are skipped without touching the index.
        let mut skipped = 0;
        for i in 0..200u32 {
            let k = format!("absent-{i:04}").into_bytes();
            match run.probe(&k) {
                Probe::Skip => skipped += 1,
                Probe::Miss => {}
                Probe::Hit(_) => panic!("absent key reported present"),
            }
        }
        assert!(skipped > 150, "bloom skipped only {skipped}/200");
    }

    #[test]
    fn iter_from_starts_at_lower_bound() {
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..100u32)
            .map(|i| (format!("k{i:03}").into_bytes(), Some(vec![1])))
            .collect();
        let mut s = MemStorage::new();
        let run = Run::write(5, entries, &mut s).unwrap();
        let from: Vec<Vec<u8>> = run.iter_from(b"k050").map(|(k, _)| k.to_vec()).collect();
        assert_eq!(from.len(), 50);
        assert_eq!(from[0], b"k050".to_vec());
        assert!(run.iter_from(b"zzz").next().is_none());
        assert_eq!(run.iter_from(b"").count(), 100);
        // Between-keys bound lands on the next entry.
        let between: Vec<Vec<u8>> = run.iter_from(b"k0505").map(|(k, _)| k.to_vec()).collect();
        assert_eq!(between[0], b"k051".to_vec());
    }

    #[test]
    fn corruption_is_detected() {
        let mut s = MemStorage::new();
        let h = s.handle();
        Run::write(1, sample(), &mut s).unwrap();
        h.corrupt(14, 0xFF);
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn truncated_file_is_corrupt() {
        let mut s = MemStorage::new();
        Run::write(1, sample(), &mut s).unwrap();
        let len = s.len().unwrap();
        s.set_len(len - 3).unwrap();
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
        s.set_len(4).unwrap();
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn unsorted_entries_rejected_at_load() {
        let mut s = MemStorage::new();
        let entries = vec![
            (b"b".to_vec(), Some(b"1".to_vec())),
            (b"a".to_vec(), Some(b"2".to_vec())),
        ];
        Run::write(1, entries, &mut s).unwrap();
        assert!(matches!(Run::load(1, &mut s), Err(StoreError::Corrupt(_))));
        let mut s1 = MemStorage::new();
        let entries = vec![
            (b"b".to_vec(), Some(b"1".to_vec())),
            (b"a".to_vec(), Some(b"2".to_vec())),
        ];
        Run::write_v1(1, &entries, &mut s1).unwrap();
        assert!(matches!(Run::load(1, &mut s1), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn empty_run_round_trips() {
        let mut s = MemStorage::new();
        let run = Run::write(2, Vec::new(), &mut s).unwrap();
        assert_eq!(run.entry_count(), 0);
        assert!(matches!(run.probe(b"x"), Probe::Skip | Probe::Miss));
        let loaded = Run::load(2, &mut s).unwrap();
        assert_eq!(loaded.entry_count(), 0);
        assert!(loaded.iter().next().is_none());
    }

    #[test]
    fn file_names_sort_by_id() {
        assert_eq!(Run::file_name(3), "run-00000003");
        assert_eq!(Run::parse_file_name("run-00000003"), Some(3));
        assert_eq!(Run::parse_file_name("manifest"), None);
        assert!(Run::file_name(9) < Run::file_name(10));
    }
}
