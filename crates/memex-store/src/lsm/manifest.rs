//! The manifest: an append-only log of full run-set states.
//!
//! Every seal or compaction appends one complete record — `(epoch,
//! next_run_id, live runs newest-first)` — and the last intact record
//! wins at open. Full-state records (rather than deltas) keep recovery
//! trivially idempotent: there is nothing to replay, only a latest state
//! to adopt. A torn tail (crash mid-append) is trimmed exactly like a
//! torn WAL tail; the state simply reverts to the previous record, and
//! the run the torn record would have referenced becomes an orphan for
//! the recovery scan to delete.
//!
//! Frame format: `[len u32][crc32 u32][payload]`, crc over the payload.
//! Since tiered compaction each live run carries a **level tag**, so two
//! payload layouts exist:
//!
//! ```text
//! v1: [epoch u64][next_run_id u64][count u32][run id u64]*
//! v2: [epoch u64][next_run_id u64][count u32]([run id u64][level u32])*
//! ```
//!
//! A v2 frame sets the high bit of `len` ([`FLAG_LEVELED`]) — payload
//! lengths never approach 2 GiB, so the bit is free. The flag (not
//! payload-length arithmetic) disambiguates the layouts: `20 + 8n` and
//! `20 + 12m` collide for plenty of `(n, m)` pairs. Old v1 records parse
//! with every run at level 0; the first append rewrites state as v2.
//!
//! The durability contract mirrors the WAL's: a record is only trusted
//! after [`Manifest::append`] returns, which syncs. Callers must sync the
//! run files a record references *before* appending it.

use crate::codec::{crc32, get_u32, get_u64, put_u32, put_u64};
use crate::error::{StoreError, StoreResult};
use crate::vfs::Storage;

/// High bit of the frame `len` field: set on records whose runs carry
/// level tags (payload v2).
const FLAG_LEVELED: u32 = 0x8000_0000;

/// Live manifest state plus the append cursor.
pub struct Manifest {
    storage: Box<dyn Storage>,
    /// Logical end: offset just past the last intact record.
    end: u64,
    /// Epoch of the current run set (bumped by every seal/compaction).
    pub epoch: u64,
    /// Next run id to allocate (ids are never reused).
    pub next_run_id: u64,
    /// Live runs as `(id, level)`, newest first. Level 0 is freshly
    /// sealed; compaction outputs land one level below their inputs.
    pub runs: Vec<(u64, u32)>,
    /// True when open found (and trimmed) a torn tail.
    pub torn_tail: bool,
    /// Bytes trimmed while repairing the tail.
    pub repaired_bytes: u64,
}

impl Manifest {
    /// Open and replay; adopts the last intact record and trims any torn
    /// tail so the next append lands on a clean boundary.
    pub fn open(mut storage: Box<dyn Storage>) -> StoreResult<Manifest> {
        let file_len = storage.len()?;
        let mut pos = 0u64;
        let mut epoch = 0u64;
        let mut next_run_id = 0u64;
        let mut runs: Vec<(u64, u32)> = Vec::new();
        loop {
            let mut header = [0u8; 8];
            if pos + 8 > file_len {
                break;
            }
            storage.read_exact_at(pos, &mut header)?;
            let mut hpos = 0usize;
            let len_raw = get_u32(&header, &mut hpos)?;
            let stored_crc = get_u32(&header, &mut hpos)?;
            let leveled = len_raw & FLAG_LEVELED != 0;
            let len = u64::from(len_raw & !FLAG_LEVELED);
            if len == 0 || pos + 8 + len > file_len {
                break; // torn or garbage tail
            }
            let payload_len = usize::try_from(len)
                .map_err(|_| StoreError::Corrupt(format!("oversized frame: {len} bytes")))?;
            let mut payload = vec![0u8; payload_len];
            storage.read_exact_at(pos + 8, &mut payload)?;
            if crc32(&payload) != stored_crc {
                break; // torn mid-payload
            }
            let mut p = 0usize;
            let Ok(rec_epoch) = get_u64(&payload, &mut p) else {
                break;
            };
            let Ok(rec_next) = get_u64(&payload, &mut p) else {
                break;
            };
            let Ok(count) = get_u32(&payload, &mut p) else {
                break;
            };
            let mut rec_runs = Vec::with_capacity(count as usize);
            let mut malformed = false;
            for _ in 0..count {
                let Ok(id) = get_u64(&payload, &mut p) else {
                    malformed = true;
                    break;
                };
                let level = if leveled {
                    match get_u32(&payload, &mut p) {
                        Ok(l) => l,
                        Err(_) => {
                            malformed = true;
                            break;
                        }
                    }
                } else {
                    0
                };
                rec_runs.push((id, level));
            }
            if malformed || p != payload_len {
                break; // malformed record: treat as tail damage
            }
            epoch = rec_epoch;
            next_run_id = rec_next;
            runs = rec_runs;
            pos += 8 + len;
        }
        let torn_tail = pos < file_len;
        let repaired_bytes = file_len - pos;
        if torn_tail {
            storage.set_len(pos)?;
            storage.sync()?;
        }
        Ok(Manifest {
            storage,
            end: pos,
            epoch,
            next_run_id,
            runs,
            torn_tail,
            repaired_bytes,
        })
    }

    /// Append a new full state and sync. On success the in-memory fields
    /// reflect the record; on failure they are unchanged (the bytes that
    /// may have landed are a torn tail the next open will trim).
    pub fn append(&mut self, epoch: u64, next_run_id: u64, runs: &[(u64, u32)]) -> StoreResult<()> {
        let mut payload = Vec::new();
        put_u64(&mut payload, epoch);
        put_u64(&mut payload, next_run_id);
        let count = u32::try_from(runs.len()).map_err(|_| StoreError::TooLarge {
            what: "manifest run count",
            len: runs.len(),
            max: u32::MAX as usize,
        })?;
        put_u32(&mut payload, count);
        for (id, level) in runs {
            put_u64(&mut payload, *id);
            put_u32(&mut payload, *level);
        }
        let mut frame = Vec::new();
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|l| l & FLAG_LEVELED == 0)
            .ok_or(StoreError::TooLarge {
                what: "manifest record",
                len: payload.len(),
                max: (FLAG_LEVELED - 1) as usize,
            })?;
        put_u32(&mut frame, len | FLAG_LEVELED);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.storage.write_all_at(self.end, &frame)?;
        self.storage.sync()?;
        self.end += frame.len() as u64;
        self.epoch = epoch;
        self.next_run_id = next_run_id;
        self.runs = runs.to_vec();
        Ok(())
    }

    /// Append a legacy v1 record (no level tags). Test-only: lets the
    /// crash harness seed stores whose manifests predate tiering.
    #[doc(hidden)]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn append_v1(&mut self, epoch: u64, next_run_id: u64, runs: &[u64]) -> StoreResult<()> {
        let mut payload = Vec::new();
        put_u64(&mut payload, epoch);
        put_u64(&mut payload, next_run_id);
        put_u32(&mut payload, runs.len() as u32);
        for id in runs {
            put_u64(&mut payload, *id);
        }
        let mut frame = Vec::new();
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.storage.write_all_at(self.end, &frame)?;
        self.storage.sync()?;
        self.end += frame.len() as u64;
        self.epoch = epoch;
        self.next_run_id = next_run_id;
        self.runs = runs.iter().map(|id| (*id, 0)).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemStorage;

    #[test]
    fn append_and_reopen() {
        let s = MemStorage::new();
        let h = s.handle();
        let mut m = Manifest::open(Box::new(s)).unwrap();
        assert_eq!(m.epoch, 0);
        m.append(1, 2, &[(1, 0), (0, 0)]).unwrap();
        m.append(2, 3, &[(2, 1)]).unwrap();
        let reopened = Manifest::open(Box::new(MemStorage::from_bytes(h.current_bytes()))).unwrap();
        assert_eq!(reopened.epoch, 2);
        assert_eq!(reopened.next_run_id, 3);
        assert_eq!(reopened.runs, vec![(2, 1)]);
        assert!(!reopened.torn_tail);
    }

    #[test]
    fn v1_records_parse_at_level_zero() {
        let s = MemStorage::new();
        let h = s.handle();
        let mut m = Manifest::open(Box::new(s)).unwrap();
        m.append_v1(1, 3, &[2, 1]).unwrap();
        let reopened = Manifest::open(Box::new(MemStorage::from_bytes(h.current_bytes()))).unwrap();
        assert_eq!(reopened.epoch, 1);
        assert_eq!(reopened.runs, vec![(2, 0), (1, 0)]);
    }

    #[test]
    fn v1_then_v2_records_interleave() {
        // The upgrade path in miniature: legacy records followed by
        // leveled ones in the same file, last record wins.
        let s = MemStorage::new();
        let h = s.handle();
        let mut m = Manifest::open(Box::new(s)).unwrap();
        m.append_v1(1, 2, &[1]).unwrap();
        m.append(2, 4, &[(3, 0), (1, 0)]).unwrap();
        m.append(3, 5, &[(4, 1)]).unwrap();
        let reopened = Manifest::open(Box::new(MemStorage::from_bytes(h.current_bytes()))).unwrap();
        assert_eq!(reopened.epoch, 3);
        assert_eq!(reopened.next_run_id, 5);
        assert_eq!(reopened.runs, vec![(4, 1)]);
    }

    #[test]
    fn torn_tail_reverts_to_previous_record() {
        let s = MemStorage::new();
        let h = s.handle();
        let mut m = Manifest::open(Box::new(s)).unwrap();
        m.append(1, 2, &[(1, 0)]).unwrap();
        m.append(2, 5, &[(4, 0), (3, 0)]).unwrap();
        let full = h.current_bytes();
        // Cut the second record at every byte offset: state must be
        // either record 2 (intact) or record 1 (torn) — never garbage.
        // Frame = 8-byte header + payload (epoch + next_run_id + count +
        // one (run id, level) pair) = 8 + 32.
        let first_record_end = 40;
        for cut in 0..full.len() {
            let mut bytes = full.clone();
            bytes.truncate(cut);
            let m = Manifest::open(Box::new(MemStorage::from_bytes(bytes))).unwrap();
            if cut < first_record_end {
                assert_eq!(m.epoch, 0, "cut at {cut}");
                assert!(m.runs.is_empty());
            } else if cut < full.len() {
                assert_eq!(m.epoch, 1, "cut at {cut}");
                assert_eq!(m.runs, vec![(1, 0)]);
                assert!(m.torn_tail || cut == first_record_end);
            }
        }
    }

    #[test]
    fn failed_append_leaves_state_unchanged() {
        let s = MemStorage::new();
        let h = s.handle();
        let mut m = Manifest::open(Box::new(s)).unwrap();
        m.append(1, 2, &[(1, 0)]).unwrap();
        // Simulate an append failure by corrupting afterwards: the open
        // path must fall back to record 1.
        m.append(2, 3, &[(2, 0), (1, 0)]).unwrap();
        let mut bytes = h.current_bytes();
        if let Some(last) = bytes.last_mut() {
            *last ^= 0xFF;
        }
        let reopened = Manifest::open(Box::new(MemStorage::from_bytes(bytes))).unwrap();
        assert_eq!(reopened.epoch, 1);
        assert_eq!(reopened.runs, vec![(1, 0)]);
        assert!(reopened.torn_tail);
    }

    #[test]
    fn trims_tail_durably() {
        let s = MemStorage::new();
        let h = s.handle();
        {
            let mut m = Manifest::open(Box::new(s)).unwrap();
            m.append(1, 2, &[(1, 0)]).unwrap();
        }
        let mut bytes = h.current_bytes();
        bytes.extend_from_slice(&[1, 2, 3]); // garbage tail
        let garbage = MemStorage::from_bytes(bytes);
        let gh = garbage.handle();
        let m = Manifest::open(Box::new(garbage)).unwrap();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.repaired_bytes, 3);
        let reopened =
            Manifest::open(Box::new(MemStorage::from_bytes(gh.current_bytes()))).unwrap();
        assert!(!reopened.torn_tail, "tail trim persisted");
    }
}
