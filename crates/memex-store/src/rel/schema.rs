//! Table schemas: named, typed columns with optional uniqueness.

use crate::codec::{get_bytes, get_uvarint, put_bytes, put_uvarint};
use crate::error::{StoreError, StoreResult};
pub use crate::rel::value::ColType;

use crate::rel::value::Value;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
    /// Enforced via a mandatory secondary index.
    pub unique: bool,
}

impl Column {
    pub fn new(name: &str, ty: ColType) -> Column {
        Column {
            name: name.to_string(),
            ty,
            unique: false,
        }
    }

    pub fn unique(name: &str, ty: ColType) -> Column {
        Column {
            name: name.to_string(),
            ty,
            unique: true,
        }
    }
}

/// A table schema. Rows are identified by an auto-assigned `RowId`; user
/// columns are positional but addressable by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    pub name: String,
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(name: &str, columns: Vec<Column>) -> StoreResult<Schema> {
        if name.is_empty() {
            return Err(StoreError::Schema("table name must not be empty".into()));
        }
        if columns.is_empty() {
            return Err(StoreError::Schema(format!(
                "table `{name}` needs at least one column"
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(StoreError::Schema(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
        }
        Ok(Schema {
            name: name.to_string(),
            columns,
        })
    }

    /// Position of a named column.
    pub fn col_index(&self, name: &str) -> StoreResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StoreError::Schema(format!("no column `{name}` in `{}`", self.name)))
    }

    /// Validate a row against the schema.
    pub fn validate(&self, row: &[Value]) -> StoreResult<()> {
        if row.len() != self.columns.len() {
            return Err(StoreError::Schema(format!(
                "table `{}` expects {} columns, row has {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !v.fits(c.ty) {
                return Err(StoreError::Schema(format!(
                    "column `{}` of `{}` expects {:?}, got {:?}",
                    c.name, self.name, c.ty, v
                )));
            }
        }
        Ok(())
    }

    /// Persistent encoding (stored in the catalog namespace).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_bytes(&mut out, self.name.as_bytes());
        put_uvarint(&mut out, self.columns.len() as u64);
        for c in &self.columns {
            put_bytes(&mut out, c.name.as_bytes());
            out.push(match c.ty {
                ColType::Int => 1,
                ColType::Float => 2,
                ColType::Text => 3,
                ColType::Bool => 4,
                ColType::Bytes => 5,
            });
            out.push(u8::from(c.unique));
        }
        out
    }

    /// Inverse of [`Schema::encode`].
    pub fn decode(buf: &[u8]) -> StoreResult<Schema> {
        let mut pos = 0usize;
        let name = String::from_utf8(get_bytes(buf, &mut pos)?.to_vec())
            .map_err(|_| StoreError::Corrupt("schema name not utf-8".into()))?;
        let n = get_uvarint(buf, &mut pos)? as usize;
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let cname = String::from_utf8(get_bytes(buf, &mut pos)?.to_vec())
                .map_err(|_| StoreError::Corrupt("column name not utf-8".into()))?;
            let ty = match buf.get(pos) {
                Some(1) => ColType::Int,
                Some(2) => ColType::Float,
                Some(3) => ColType::Text,
                Some(4) => ColType::Bool,
                Some(5) => ColType::Bytes,
                _ => return Err(StoreError::Corrupt("bad column type tag".into())),
            };
            pos += 1;
            let unique = match buf.get(pos) {
                Some(0) => false,
                Some(1) => true,
                _ => return Err(StoreError::Corrupt("bad unique flag".into())),
            };
            pos += 1;
            columns.push(Column {
                name: cname,
                ty,
                unique,
            });
        }
        Schema::new(&name, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages_schema() -> Schema {
        Schema::new(
            "pages",
            vec![
                Column::unique("url", ColType::Text),
                Column::new("title", ColType::Text),
                Column::new("bytes", ColType::Int),
                Column::new("score", ColType::Float),
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_round_trips() {
        let s = pages_schema();
        assert_eq!(Schema::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(
            "t",
            vec![
                Column::new("a", ColType::Int),
                Column::new("a", ColType::Text),
            ],
        );
        assert!(err.is_err());
    }

    #[test]
    fn validation_checks_arity_and_types() {
        let s = pages_schema();
        let good = vec![
            Value::Text("http://x".into()),
            Value::Text("X".into()),
            Value::Int(1000),
            Value::Float(0.5),
        ];
        s.validate(&good).unwrap();
        let short = vec![Value::Text("u".into())];
        assert!(s.validate(&short).is_err());
        let wrong = vec![
            Value::Int(1),
            Value::Text("X".into()),
            Value::Int(1000),
            Value::Float(0.5),
        ];
        assert!(s.validate(&wrong).is_err());
        let with_null = vec![
            Value::Text("http://x".into()),
            Value::Null,
            Value::Int(0),
            Value::Float(0.0),
        ];
        s.validate(&with_null).unwrap();
    }

    #[test]
    fn col_index_by_name() {
        let s = pages_schema();
        assert_eq!(s.col_index("bytes").unwrap(), 2);
        assert!(s.col_index("missing").is_err());
    }
}
