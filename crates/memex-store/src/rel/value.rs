//! Typed values, their row encoding and the order-preserving index encoding.

use crate::codec::{get_bytes, get_f64, get_ivarint, put_bytes, put_f64, put_ivarint};
use crate::error::{StoreError, StoreResult};

/// Column types supported by the metadata engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    Int,
    Float,
    Text,
    Bool,
    Bytes,
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    Bytes(Vec<u8>),
    Null,
}

impl Value {
    /// The type this value inhabits, or `None` for `Null` (which fits any).
    pub fn col_type(&self) -> Option<ColType> {
        match self {
            Value::Int(_) => Some(ColType::Int),
            Value::Float(_) => Some(ColType::Float),
            Value::Text(_) => Some(ColType::Text),
            Value::Bool(_) => Some(ColType::Bool),
            Value::Bytes(_) => Some(ColType::Bytes),
            Value::Null => None,
        }
    }

    /// Does this value fit a column of type `t`?
    pub fn fits(&self, t: ColType) -> bool {
        matches!(self, Value::Null) || self.col_type() == Some(t)
    }

    /// Convenience accessors (None when the variant does not match).
    pub fn as_int(&self) -> Option<i64> {
        if let Value::Int(v) = self {
            Some(*v)
        } else {
            None
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        if let Value::Float(v) = self {
            Some(*v)
        } else {
            None
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        if let Value::Text(v) = self {
            Some(v)
        } else {
            None
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        if let Value::Bool(v) = self {
            Some(*v)
        } else {
            None
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        if let Value::Bytes(v) = self {
            Some(v)
        } else {
            None
        }
    }

    /// Row (storage) encoding: tag byte + payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(v) => {
                out.push(1);
                put_ivarint(out, *v);
            }
            Value::Float(v) => {
                out.push(2);
                put_f64(out, *v);
            }
            Value::Text(v) => {
                out.push(3);
                put_bytes(out, v.as_bytes());
            }
            Value::Bool(v) => {
                out.push(4);
                out.push(u8::from(*v));
            }
            Value::Bytes(v) => {
                out.push(5);
                put_bytes(out, v);
            }
        }
    }

    /// Inverse of [`Value::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> StoreResult<Value> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| StoreError::Corrupt("value tag truncated".into()))?;
        *pos += 1;
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Int(get_ivarint(buf, pos)?),
            2 => Value::Float(get_f64(buf, pos)?),
            3 => {
                let bytes = get_bytes(buf, pos)?;
                Value::Text(
                    std::str::from_utf8(bytes)
                        .map_err(|_| StoreError::Corrupt("text cell not utf-8".into()))?
                        .to_string(),
                )
            }
            4 => {
                let b = *buf
                    .get(*pos)
                    .ok_or_else(|| StoreError::Corrupt("bool truncated".into()))?;
                *pos += 1;
                Value::Bool(b != 0)
            }
            5 => Value::Bytes(get_bytes(buf, pos)?.to_vec()),
            t => return Err(StoreError::Corrupt(format!("unknown value tag {t}"))),
        })
    }

    /// Order-preserving encoding for index keys: for values `a < b` of one
    /// type, `enc(a) < enc(b)` bytewise. Nulls sort first. Variable-length
    /// payloads (text/bytes) are escaped (`00 -> 00 01`) and terminated with
    /// `00 00` so they compose safely with suffixes (like row ids).
    pub fn encode_ordered(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0x00),
            Value::Bool(v) => {
                out.push(0x01);
                out.push(u8::from(*v));
            }
            Value::Int(v) => {
                out.push(0x02);
                // Flip the sign bit so two's-complement sorts unsigned.
                let biased = (*v as u64) ^ (1u64 << 63);
                out.extend_from_slice(&biased.to_be_bytes());
            }
            Value::Float(v) => {
                out.push(0x03);
                let bits = v.to_bits();
                // IEEE-754 total-order trick: negative floats reverse.
                let key = if bits & (1 << 63) != 0 {
                    !bits
                } else {
                    bits | (1 << 63)
                };
                out.extend_from_slice(&key.to_be_bytes());
            }
            Value::Text(v) => {
                out.push(0x04);
                escape_into(v.as_bytes(), out);
            }
            Value::Bytes(v) => {
                out.push(0x05);
                escape_into(v, out);
            }
        }
    }
}

/// Escape `00 -> 00 01`, terminate with `00 00`.
fn escape_into(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        if b == 0x00 {
            out.push(0x00);
            out.push(0x01);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

/// Encode a whole row.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 8);
    crate::codec::put_uvarint(&mut out, row.len() as u64);
    for v in row {
        v.encode(&mut out);
    }
    out
}

/// Decode a whole row.
pub fn decode_row(buf: &[u8]) -> StoreResult<Vec<Value>> {
    let mut pos = 0usize;
    let n = crate::codec::get_uvarint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Value::decode(buf, &mut pos)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ordered(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        v.encode_ordered(&mut out);
        out
    }

    #[test]
    fn row_round_trip() {
        let row = vec![
            Value::Int(-42),
            Value::Float(2.75),
            Value::Text("classical music".into()),
            Value::Bool(true),
            Value::Bytes(vec![0, 1, 2]),
            Value::Null,
        ];
        let enc = encode_row(&row);
        assert_eq!(decode_row(&enc).unwrap(), row);
    }

    #[test]
    fn ordered_ints_sort_correctly() {
        let vals = [i64::MIN, -100, -1, 0, 1, 99, i64::MAX];
        for w in vals.windows(2) {
            assert!(
                ordered(&Value::Int(w[0])) < ordered(&Value::Int(w[1])),
                "{} should sort before {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ordered_floats_sort_correctly() {
        let vals = [f64::NEG_INFINITY, -1e9, -0.5, 0.0, 0.5, 3.25, f64::INFINITY];
        for w in vals.windows(2) {
            assert!(ordered(&Value::Float(w[0])) < ordered(&Value::Float(w[1])));
        }
    }

    #[test]
    fn ordered_text_sorts_lexicographically_and_escapes_nul() {
        assert!(ordered(&Value::Text("abc".into())) < ordered(&Value::Text("abd".into())));
        assert!(ordered(&Value::Text("ab".into())) < ordered(&Value::Text("abc".into())));
        // A string containing NUL must not collide with its prefix.
        let with_nul = Value::Bytes(vec![b'a', 0x00, b'b']);
        let plain = Value::Bytes(vec![b'a']);
        assert!(ordered(&plain) < ordered(&with_nul));
    }

    #[test]
    fn null_sorts_first() {
        assert!(ordered(&Value::Null) < ordered(&Value::Bool(false)));
        assert!(ordered(&Value::Null) < ordered(&Value::Int(i64::MIN)));
    }

    #[test]
    fn type_checks() {
        assert!(Value::Int(1).fits(ColType::Int));
        assert!(!Value::Int(1).fits(ColType::Text));
        assert!(Value::Null.fits(ColType::Text), "null fits any column");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_row(&[9, 9, 9]).is_err());
        let mut pos = 0;
        assert!(Value::decode(&[42], &mut pos).is_err());
    }
}
