//! The metadata database: tables, secondary indexes, predicate scans.
//!
//! Physical layout — everything lives in one [`KvStore`], namespaced by key
//! prefixes (big-endian ids keep scans clustered per table):
//!
//! ```text
//! c:<table-name>                      -> table id (u32 BE) + schema bytes
//! m:next_table                        -> u32 BE
//! n:<tid>                             -> next row id (u64 BE)
//! r:<tid><rowid BE>                   -> encoded row
//! xc:<tid><col BE>                    -> marker: column is indexed
//! x:<tid><col BE><ordered-value><rowid BE> -> "" (index entry)
//! ```

use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;
use std::path::Path;

use crate::error::{StoreError, StoreResult};
use crate::kv::{KvStore, KvStoreOptions};
use crate::rel::predicate::Predicate;
use crate::rel::schema::Schema;
use crate::rel::value::{decode_row, encode_row, Value};

/// Row identifier, auto-assigned per table.
pub type RowId = u64;

/// Cheap handle naming a table; obtained from [`Database::create_table`]
/// or [`Database::table`].
#[derive(Debug, Clone)]
pub struct TableHandle {
    pub id: u32,
    pub schema: Schema,
}

/// The relational metadata engine.
pub struct Database {
    kv: KvStore,
    /// table id -> set of indexed column positions.
    indexes: HashMap<u32, BTreeSet<u16>>,
}

impl Database {
    /// In-memory database.
    pub fn open_memory() -> StoreResult<Database> {
        Self::build(KvStore::open_memory()?)
    }

    /// Durable database stored in `dir` as `meta.db` / `meta.wal`.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> StoreResult<Database> {
        Self::build(KvStore::open_dir(dir, "meta", KvStoreOptions::default())?)
    }

    fn build(mut kv: KvStore) -> StoreResult<Database> {
        // Load index markers.
        let mut indexes: HashMap<u32, BTreeSet<u16>> = HashMap::new();
        for (k, _) in kv.scan_prefix(b"xc:")? {
            if k.len() == 3 + 4 + 2 {
                let tid = u32::from_be_bytes(k[3..7].try_into().expect("length checked"));
                let col = u16::from_be_bytes(k[7..9].try_into().expect("length checked"));
                indexes.entry(tid).or_default().insert(col);
            }
        }
        Ok(Database { kv, indexes })
    }

    /// Register the backing KvStore (and its WAL / pager / B+Tree) with
    /// `registry`. The relational layer itself adds no metrics of its own.
    pub fn attach_registry(&mut self, registry: &memex_obs::MetricsRegistry) {
        self.kv.attach_registry(registry);
    }

    /// Create a table; unique columns get indexes automatically.
    pub fn create_table(&mut self, schema: Schema) -> StoreResult<TableHandle> {
        let cat_key = Self::catalog_key(&schema.name);
        if self.kv.get(&cat_key)?.is_some() {
            return Err(StoreError::Schema(format!(
                "table `{}` already exists",
                schema.name
            )));
        }
        let id = self.bump_counter(b"m:next_table", 4)? as u32;
        let mut rec = id.to_be_bytes().to_vec();
        rec.extend_from_slice(&schema.encode());
        self.kv.put(&cat_key, &rec)?;
        let handle = TableHandle { id, schema };
        let unique_cols: Vec<String> = handle
            .schema
            .columns
            .iter()
            .filter(|c| c.unique)
            .map(|c| c.name.clone())
            .collect();
        for col in unique_cols {
            self.create_index(&handle, &col)?;
        }
        Ok(handle)
    }

    /// Look up an existing table by name.
    pub fn table(&mut self, name: &str) -> StoreResult<TableHandle> {
        let rec = self
            .kv
            .get(&Self::catalog_key(name))?
            .ok_or_else(|| StoreError::NotFound(format!("table `{name}`")))?;
        if rec.len() < 4 {
            return Err(StoreError::Corrupt("catalog record too short".into()));
        }
        let id = u32::from_be_bytes(rec[..4].try_into().expect("length checked"));
        let schema = Schema::decode(&rec[4..])?;
        Ok(TableHandle { id, schema })
    }

    /// All table names in the catalog.
    pub fn table_names(&mut self) -> StoreResult<Vec<String>> {
        Ok(self
            .kv
            .scan_prefix(b"c:")?
            .into_iter()
            .filter_map(|(k, _)| String::from_utf8(k[2..].to_vec()).ok())
            .collect())
    }

    /// Insert a validated row; returns its new row id.
    pub fn insert(&mut self, t: &TableHandle, row: Vec<Value>) -> StoreResult<RowId> {
        t.schema.validate(&row)?;
        self.check_unique(t, &row, None)?;
        let rowid = self.bump_counter(&Self::rowctr_key(t.id), 8)?;
        self.write_index_entries(t, rowid, &row)?;
        self.kv
            .put(&Self::row_key(t.id, rowid), &encode_row(&row))?;
        Ok(rowid)
    }

    /// Fetch a row by id.
    pub fn get(&mut self, t: &TableHandle, rowid: RowId) -> StoreResult<Option<Vec<Value>>> {
        match self.kv.get(&Self::row_key(t.id, rowid))? {
            Some(bytes) => Ok(Some(decode_row(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Replace a row in place.
    pub fn update(&mut self, t: &TableHandle, rowid: RowId, row: Vec<Value>) -> StoreResult<()> {
        t.schema.validate(&row)?;
        let old = self
            .get(t, rowid)?
            .ok_or_else(|| StoreError::NotFound(format!("row {rowid} of `{}`", t.schema.name)))?;
        self.check_unique(t, &row, Some(rowid))?;
        self.remove_index_entries(t, rowid, &old)?;
        self.write_index_entries(t, rowid, &row)?;
        self.kv
            .put(&Self::row_key(t.id, rowid), &encode_row(&row))?;
        Ok(())
    }

    /// Delete a row; true if it existed.
    pub fn delete(&mut self, t: &TableHandle, rowid: RowId) -> StoreResult<bool> {
        let Some(old) = self.get(t, rowid)? else {
            return Ok(false);
        };
        self.remove_index_entries(t, rowid, &old)?;
        self.kv.delete(&Self::row_key(t.id, rowid))?;
        Ok(true)
    }

    /// Create (and backfill) a secondary index on `col`.
    pub fn create_index(&mut self, t: &TableHandle, col: &str) -> StoreResult<()> {
        let col_idx = t.schema.col_index(col)? as u16;
        if self
            .indexes
            .get(&t.id)
            .is_some_and(|s| s.contains(&col_idx))
        {
            return Ok(());
        }
        self.kv.put(&Self::index_marker_key(t.id, col_idx), &[1])?;
        // Backfill from existing rows.
        let rows = self.scan(t, &Predicate::True)?;
        for (rowid, row) in rows {
            let key = Self::index_entry_key(t.id, col_idx, &row[col_idx as usize], rowid);
            self.kv.put(&key, &[])?;
        }
        self.indexes.entry(t.id).or_default().insert(col_idx);
        Ok(())
    }

    /// All `(RowId, row)` matching `pred`. Uses a point index probe when the
    /// predicate contains an equality conjunct on an indexed column, else a
    /// clustered full-table scan.
    pub fn scan(
        &mut self,
        t: &TableHandle,
        pred: &Predicate,
    ) -> StoreResult<Vec<(RowId, Vec<Value>)>> {
        if let Some((col, value)) = pred.index_point() {
            if let Ok(col_idx) = t.schema.col_index(col) {
                let col_idx = col_idx as u16;
                if self
                    .indexes
                    .get(&t.id)
                    .is_some_and(|s| s.contains(&col_idx))
                {
                    let rowids = self.probe_index(t, col_idx, value)?;
                    let mut out = Vec::with_capacity(rowids.len());
                    for rowid in rowids {
                        if let Some(row) = self.get(t, rowid)? {
                            if pred.matches(&t.schema, &row) {
                                out.push((rowid, row));
                            }
                        }
                    }
                    return Ok(out);
                }
            }
        }
        let prefix = Self::row_prefix(t.id);
        let mut out = Vec::new();
        let mut scan_err = None;
        let schema = t.schema.clone();
        self.kv.for_each_range(
            Bound::Included(prefix.as_slice()),
            Bound::Unbounded,
            |k, v| {
                if !k.starts_with(&prefix) {
                    return false;
                }
                let rowid = u64::from_be_bytes(k[prefix.len()..].try_into().unwrap_or([0; 8]));
                match decode_row(v) {
                    Ok(row) => {
                        if pred.matches(&schema, &row) {
                            out.push((rowid, row));
                        }
                        true
                    }
                    Err(e) => {
                        scan_err = Some(e);
                        false
                    }
                }
            },
        )?;
        match scan_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Number of rows in the table.
    pub fn count(&mut self, t: &TableHandle) -> StoreResult<u64> {
        let prefix = Self::row_prefix(t.id);
        let mut n = 0u64;
        self.kv.for_each_range(
            Bound::Included(prefix.as_slice()),
            Bound::Unbounded,
            |k, _| {
                if !k.starts_with(&prefix) {
                    return false;
                }
                n += 1;
                true
            },
        )?;
        Ok(n)
    }

    /// Find the single row where unique `col == value`.
    pub fn lookup_unique(
        &mut self,
        t: &TableHandle,
        col: &str,
        value: &Value,
    ) -> StoreResult<Option<(RowId, Vec<Value>)>> {
        let hits = self.scan(t, &Predicate::eq(col, value.clone()))?;
        Ok(hits.into_iter().next())
    }

    /// Flush everything to stable storage.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        self.kv.checkpoint()
    }

    // -- key builders -------------------------------------------------------

    fn catalog_key(name: &str) -> Vec<u8> {
        let mut k = b"c:".to_vec();
        k.extend_from_slice(name.as_bytes());
        k
    }

    fn rowctr_key(tid: u32) -> Vec<u8> {
        let mut k = b"n:".to_vec();
        k.extend_from_slice(&tid.to_be_bytes());
        k
    }

    fn row_prefix(tid: u32) -> Vec<u8> {
        let mut k = b"r:".to_vec();
        k.extend_from_slice(&tid.to_be_bytes());
        k
    }

    fn row_key(tid: u32, rowid: RowId) -> Vec<u8> {
        let mut k = Self::row_prefix(tid);
        k.extend_from_slice(&rowid.to_be_bytes());
        k
    }

    fn index_marker_key(tid: u32, col: u16) -> Vec<u8> {
        let mut k = b"xc:".to_vec();
        k.extend_from_slice(&tid.to_be_bytes());
        k.extend_from_slice(&col.to_be_bytes());
        k
    }

    fn index_prefix(tid: u32, col: u16, value: &Value) -> Vec<u8> {
        let mut k = b"x:".to_vec();
        k.extend_from_slice(&tid.to_be_bytes());
        k.extend_from_slice(&col.to_be_bytes());
        value.encode_ordered(&mut k);
        k
    }

    fn index_entry_key(tid: u32, col: u16, value: &Value, rowid: RowId) -> Vec<u8> {
        let mut k = Self::index_prefix(tid, col, value);
        k.extend_from_slice(&rowid.to_be_bytes());
        k
    }

    // -- internals ----------------------------------------------------------

    /// Atomically post-increment a big-endian counter key of width 4 or 8.
    fn bump_counter(&mut self, key: &[u8], width: usize) -> StoreResult<u64> {
        let current = match self.kv.get(key)? {
            Some(bytes) if bytes.len() == width => {
                if width == 4 {
                    u64::from(u32::from_be_bytes(bytes[..4].try_into().expect("checked")))
                } else {
                    u64::from_be_bytes(bytes[..8].try_into().expect("checked"))
                }
            }
            _ => 1,
        };
        let next = current + 1;
        if width == 4 {
            self.kv.put(key, &(next as u32).to_be_bytes())?;
        } else {
            self.kv.put(key, &next.to_be_bytes())?;
        }
        Ok(current)
    }

    fn indexed_cols(&self, tid: u32) -> Vec<u16> {
        self.indexes
            .get(&tid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn probe_index(&mut self, t: &TableHandle, col: u16, value: &Value) -> StoreResult<Vec<RowId>> {
        let prefix = Self::index_prefix(t.id, col, value);
        Ok(self
            .kv
            .scan_prefix(&prefix)?
            .into_iter()
            .filter(|(k, _)| k.len() == prefix.len() + 8)
            .map(|(k, _)| u64::from_be_bytes(k[prefix.len()..].try_into().expect("checked")))
            .collect())
    }

    fn check_unique(
        &mut self,
        t: &TableHandle,
        row: &[Value],
        updating: Option<RowId>,
    ) -> StoreResult<()> {
        for (i, col) in t.schema.columns.iter().enumerate() {
            if !col.unique || matches!(row[i], Value::Null) {
                continue;
            }
            let hits = self.probe_index(t, i as u16, &row[i])?;
            let conflict = hits.iter().any(|&r| Some(r) != updating);
            if conflict {
                return Err(StoreError::Duplicate(format!(
                    "column `{}` of `{}` already holds {:?}",
                    col.name, t.schema.name, row[i]
                )));
            }
        }
        Ok(())
    }

    fn write_index_entries(
        &mut self,
        t: &TableHandle,
        rowid: RowId,
        row: &[Value],
    ) -> StoreResult<()> {
        for col in self.indexed_cols(t.id) {
            let key = Self::index_entry_key(t.id, col, &row[col as usize], rowid);
            self.kv.put(&key, &[])?;
        }
        Ok(())
    }

    fn remove_index_entries(
        &mut self,
        t: &TableHandle,
        rowid: RowId,
        row: &[Value],
    ) -> StoreResult<()> {
        for col in self.indexed_cols(t.id) {
            let key = Self::index_entry_key(t.id, col, &row[col as usize], rowid);
            self.kv.delete(&key)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::predicate::CmpOp;
    use crate::rel::schema::{ColType, Column};

    fn pages_table(db: &mut Database) -> TableHandle {
        db.create_table(
            Schema::new(
                "pages",
                vec![
                    Column::unique("url", ColType::Text),
                    Column::new("topic", ColType::Int),
                    Column::new("bytes", ColType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn page(url: &str, topic: i64, bytes: i64) -> Vec<Value> {
        vec![
            Value::Text(url.into()),
            Value::Int(topic),
            Value::Int(bytes),
        ]
    }

    #[test]
    fn insert_get_update_delete() {
        let mut db = Database::open_memory().unwrap();
        let t = pages_table(&mut db);
        let id = db.insert(&t, page("http://a", 1, 100)).unwrap();
        assert_eq!(db.get(&t, id).unwrap().unwrap()[1], Value::Int(1));
        db.update(&t, id, page("http://a", 2, 150)).unwrap();
        assert_eq!(db.get(&t, id).unwrap().unwrap()[1], Value::Int(2));
        assert!(db.delete(&t, id).unwrap());
        assert!(db.get(&t, id).unwrap().is_none());
        assert!(!db.delete(&t, id).unwrap());
    }

    #[test]
    fn row_ids_are_distinct_and_increasing() {
        let mut db = Database::open_memory().unwrap();
        let t = pages_table(&mut db);
        let a = db.insert(&t, page("http://a", 1, 1)).unwrap();
        let b = db.insert(&t, page("http://b", 1, 1)).unwrap();
        assert!(b > a);
    }

    #[test]
    fn unique_constraint_enforced() {
        let mut db = Database::open_memory().unwrap();
        let t = pages_table(&mut db);
        db.insert(&t, page("http://a", 1, 1)).unwrap();
        let err = db.insert(&t, page("http://a", 2, 2));
        assert!(matches!(err, Err(StoreError::Duplicate(_))));
        // Updating a row to its own value is fine.
        let (rid, _) = db
            .lookup_unique(&t, "url", &Value::Text("http://a".into()))
            .unwrap()
            .unwrap();
        db.update(&t, rid, page("http://a", 9, 9)).unwrap();
    }

    #[test]
    fn predicate_scan_and_index_probe_agree() {
        let mut db = Database::open_memory().unwrap();
        let t = pages_table(&mut db);
        for i in 0..50 {
            db.insert(
                &t,
                page(&format!("http://p{i}"), i64::from(i % 5), i64::from(i)),
            )
            .unwrap();
        }
        db.create_index(&t, "topic").unwrap();
        let by_index = db.scan(&t, &Predicate::eq("topic", Value::Int(3))).unwrap();
        assert_eq!(by_index.len(), 10);
        // Compound predicate still filters after the probe.
        let few = db
            .scan(
                &t,
                &Predicate::eq("topic", Value::Int(3)).and(Predicate::cmp(
                    "bytes",
                    CmpOp::Ge,
                    Value::Int(30),
                )),
            )
            .unwrap();
        assert_eq!(few.len(), 4);
        // Unindexed column -> full scan path gives the same answer shape.
        let by_scan = db
            .scan(&t, &Predicate::cmp("bytes", CmpOp::Lt, Value::Int(5)))
            .unwrap();
        assert_eq!(by_scan.len(), 5);
    }

    #[test]
    fn index_stays_consistent_through_update_delete() {
        let mut db = Database::open_memory().unwrap();
        let t = pages_table(&mut db);
        let id = db.insert(&t, page("http://a", 1, 1)).unwrap();
        db.create_index(&t, "topic").unwrap();
        db.update(&t, id, page("http://a", 2, 1)).unwrap();
        assert!(db
            .scan(&t, &Predicate::eq("topic", Value::Int(1)))
            .unwrap()
            .is_empty());
        assert_eq!(
            db.scan(&t, &Predicate::eq("topic", Value::Int(2)))
                .unwrap()
                .len(),
            1
        );
        db.delete(&t, id).unwrap();
        assert!(db
            .scan(&t, &Predicate::eq("topic", Value::Int(2)))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn catalog_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("memex-rel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = Database::open_dir(&dir).unwrap();
            let t = pages_table(&mut db);
            db.insert(&t, page("http://persist", 7, 70)).unwrap();
            db.checkpoint().unwrap();
        }
        {
            let mut db = Database::open_dir(&dir).unwrap();
            let t = db.table("pages").unwrap();
            assert_eq!(t.schema.columns.len(), 3);
            let (_, row) = db
                .lookup_unique(&t, "url", &Value::Text("http://persist".into()))
                .unwrap()
                .unwrap();
            assert_eq!(row[1], Value::Int(7));
            assert_eq!(db.count(&t).unwrap(), 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_tables_do_not_interfere() {
        let mut db = Database::open_memory().unwrap();
        let pages = pages_table(&mut db);
        let users = db
            .create_table(
                Schema::new("users", vec![Column::unique("name", ColType::Text)]).unwrap(),
            )
            .unwrap();
        db.insert(&pages, page("http://a", 1, 1)).unwrap();
        db.insert(&users, vec![Value::Text("soumen".into())])
            .unwrap();
        assert_eq!(db.count(&pages).unwrap(), 1);
        assert_eq!(db.count(&users).unwrap(), 1);
        assert_eq!(db.table_names().unwrap().len(), 2);
        assert!(db
            .create_table(Schema::new("pages", vec![Column::new("x", ColType::Int)]).unwrap())
            .is_err());
    }
}
