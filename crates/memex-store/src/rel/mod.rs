//! `rel` — the metadata RDBMS of the Memex server (paper §3).
//!
//! The paper keeps "metadata about pages, links, users, and topics" in a
//! relational database (Oracle or DB2). This module reproduces the needed
//! slice of that: typed schemas, auto-assigned row ids, secondary indexes
//! with order-preserving key encodings, predicate scans with index
//! selection, and persistence — all layered on the same WAL-protected
//! B+Tree substrate as the term store, namespaced by key prefixes.

pub mod db;
pub mod predicate;
pub mod schema;
pub mod value;

pub use db::{Database, RowId, TableHandle};
pub use predicate::{CmpOp, Predicate};
pub use schema::{Column, Schema};
pub use value::{ColType, Value};
