//! Row predicates with a tiny boolean algebra, plus the analysis the
//! executor uses to pick an index access path.

use crate::rel::schema::Schema;
use crate::rel::value::Value;

/// Comparison operators on a single column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A filter over rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches everything.
    True,
    /// `column <op> literal`.
    Cmp {
        col: String,
        op: CmpOp,
        value: Value,
    },
    /// Substring match on a Text column (case-sensitive).
    Contains {
        col: String,
        needle: String,
    },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col == value` convenience.
    pub fn eq(col: &str, value: Value) -> Predicate {
        Predicate::Cmp {
            col: col.to_string(),
            op: CmpOp::Eq,
            value,
        }
    }

    pub fn cmp(col: &str, op: CmpOp, value: Value) -> Predicate {
        Predicate::Cmp {
            col: col.to_string(),
            op,
            value,
        }
    }

    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    #[allow(clippy::should_implement_trait)] // builder-style peer of `and`/`or`
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against a row. Unknown columns or type mismatches are
    /// simply `false` (three-valued logic collapsed to false, as the
    /// metadata engine's callers expect).
    pub fn matches(&self, schema: &Schema, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, value } => {
                let Ok(i) = schema.col_index(col) else {
                    return false;
                };
                let Some(ord) = compare(&row[i], value) else {
                    return false;
                };
                match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                }
            }
            Predicate::Contains { col, needle } => {
                let Ok(i) = schema.col_index(col) else {
                    return false;
                };
                row[i]
                    .as_text()
                    .is_some_and(|t| t.contains(needle.as_str()))
            }
            Predicate::And(a, b) => a.matches(schema, row) && b.matches(schema, row),
            Predicate::Or(a, b) => a.matches(schema, row) || b.matches(schema, row),
            Predicate::Not(p) => !p.matches(schema, row),
        }
    }

    /// If this predicate (or a conjunct of it) is `col == v`, return
    /// `(col, v)` — the executor turns that into an index point lookup.
    pub fn index_point(&self) -> Option<(&str, &Value)> {
        match self {
            Predicate::Cmp {
                col,
                op: CmpOp::Eq,
                value,
            } => Some((col, value)),
            Predicate::And(a, b) => a.index_point().or_else(|| b.index_point()),
            _ => None,
        }
    }
}

/// Compare same-typed values; `None` on cross-type or Null comparisons.
fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use Value::*;
    match (a, b) {
        (Int(x), Int(y)) => Some(x.cmp(y)),
        (Float(x), Float(y)) => x.partial_cmp(y),
        (Text(x), Text(y)) => Some(x.cmp(y)),
        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        (Bytes(x), Bytes(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::schema::{Column, Schema};
    use crate::rel::value::ColType;

    fn schema() -> Schema {
        Schema::new(
            "visits",
            vec![
                Column::new("url", ColType::Text),
                Column::new("user", ColType::Int),
                Column::new("bytes", ColType::Int),
            ],
        )
        .unwrap()
    }

    fn row(url: &str, user: i64, bytes: i64) -> Vec<Value> {
        vec![Value::Text(url.into()), Value::Int(user), Value::Int(bytes)]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row("http://music.example/bach", 3, 1200);
        assert!(Predicate::eq("user", Value::Int(3)).matches(&s, &r));
        assert!(!Predicate::eq("user", Value::Int(4)).matches(&s, &r));
        assert!(Predicate::cmp("bytes", CmpOp::Ge, Value::Int(1200)).matches(&s, &r));
        assert!(Predicate::cmp("bytes", CmpOp::Lt, Value::Int(1201)).matches(&s, &r));
        assert!(Predicate::cmp("bytes", CmpOp::Ne, Value::Int(0)).matches(&s, &r));
    }

    #[test]
    fn boolean_algebra() {
        let s = schema();
        let r = row("u", 1, 10);
        let p = Predicate::eq("user", Value::Int(1)).and(Predicate::cmp(
            "bytes",
            CmpOp::Gt,
            Value::Int(5),
        ));
        assert!(p.matches(&s, &r));
        let q = Predicate::eq("user", Value::Int(2)).or(Predicate::eq("user", Value::Int(1)));
        assert!(q.matches(&s, &r));
        assert!(!q.clone().not().matches(&s, &r));
    }

    #[test]
    fn contains_on_text() {
        let s = schema();
        let r = row("http://music.example/bach", 1, 1);
        assert!(Predicate::Contains {
            col: "url".into(),
            needle: "bach".into()
        }
        .matches(&s, &r));
        assert!(!Predicate::Contains {
            col: "url".into(),
            needle: "jazz".into()
        }
        .matches(&s, &r));
        // Contains on a non-text column is just false.
        assert!(!Predicate::Contains {
            col: "user".into(),
            needle: "1".into()
        }
        .matches(&s, &r));
    }

    #[test]
    fn cross_type_comparison_is_false() {
        let s = schema();
        let r = row("u", 1, 10);
        assert!(!Predicate::eq("url", Value::Int(1)).matches(&s, &r));
        assert!(!Predicate::eq("missing", Value::Int(1)).matches(&s, &r));
    }

    #[test]
    fn index_point_extraction() {
        let p = Predicate::eq("user", Value::Int(7)).and(Predicate::cmp(
            "bytes",
            CmpOp::Gt,
            Value::Int(5),
        ));
        let (col, v) = p.index_point().unwrap();
        assert_eq!(col, "user");
        assert_eq!(v, &Value::Int(7));
        assert!(Predicate::cmp("bytes", CmpOp::Gt, Value::Int(5))
            .index_point()
            .is_none());
    }
}
