//! The shared [`Engine`] trait: one keyed-store interface, two engines.
//!
//! [`KvStore`] (in-place B+Tree pages) and [`LsmStore`](crate::lsm::LsmStore)
//! (log-structured runs + MVCC snapshots) both implement it, so the
//! index, server and bench layers pick an engine per store — by config
//! ([`EngineKind`]) or environment (`MEMEX_ENGINE=btree|lsm`) — without
//! caring which one is underneath.
//!
//! The trait is deliberately narrower than `KvStore`'s inherent API:
//! `put`/`delete` return no old value (an LSM write must not read), and
//! there is no `len` (an LSM engine would have to merge to count). The
//! one capability the trait *adds* is [`Engine::snapshot`]: a pinned
//! point-in-time [`SnapshotView`] whose reads proceed while ingest
//! continues. The LSM engine pins a run-set epoch for free; the B+Tree
//! engine materializes a copy — correct, but O(n), which is exactly the
//! asymmetry the `ingest-while-scan` bench rows measure.
//!
//! Reads (`get`, scans, `snapshot`) take `&self`: neither engine needs
//! exclusive access to serve a read, and forcing `&mut` on the trait was
//! forcing exclusive access onto callers that only read (the inverted
//! index serialized every query behind a store-wide mutex because of
//! it). Writes, durability barriers and wiring stay `&mut` — stores are
//! still writer-owned.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use memex_obs::MetricsRegistry;

use crate::error::StoreResult;
use crate::kv::{KvStore, KvStoreOptions};
use crate::lsm::{LsmOptions, LsmStore};

/// Which storage engine backs a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// In-place B+Tree pages ([`KvStore`]).
    #[default]
    BTree,
    /// Log-structured runs with MVCC snapshots
    /// ([`LsmStore`](crate::lsm::LsmStore)).
    Lsm,
}

impl EngineKind {
    /// Parse a config/env spelling; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "btree" | "b+tree" | "bt" => Some(EngineKind::BTree),
            "lsm" | "log" => Some(EngineKind::Lsm),
            _ => None,
        }
    }

    /// Read `MEMEX_ENGINE` from the environment (unset or unparseable →
    /// `None`; callers fall back to their configured default).
    pub fn from_env() -> Option<EngineKind> {
        std::env::var("MEMEX_ENGINE")
            .ok()
            .and_then(|v| EngineKind::parse(&v))
    }

    /// Stable lowercase name (used in bench artifact rows and logs).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::BTree => "btree",
            EngineKind::Lsm => "lsm",
        }
    }
}

/// A pinned point-in-time read view. All methods are infallible: the
/// view owns (or pins via `Arc`) everything it reads, so no I/O and no
/// lock is involved after creation.
pub trait SnapshotView: Send + Sync {
    /// The engine epoch this view pinned (monotonic per store).
    fn epoch(&self) -> u64;

    /// Point lookup in the pinned state.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Merged range iteration; `f` returning `false` stops early.
    fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    );

    /// Collect every `(key, value)` whose key starts with `prefix`.
    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        self.for_each_range(Bound::Included(prefix), Bound::Unbounded, &mut |k, v| {
            if !k.starts_with(prefix) {
                return false;
            }
            out.push((k.to_vec(), v.to_vec()));
            true
        });
        out
    }

    /// Collect a bounded range.
    fn scan(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        self.for_each_range(start, end, &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        });
        out
    }
}

/// The engine-neutral keyed-store interface.
pub trait Engine: Send + Sync {
    /// Which engine this is (for logs, stats wiring and bench rows).
    fn kind(&self) -> EngineKind;

    /// Upsert.
    fn put(&mut self, key: &[u8], value: &[u8]) -> StoreResult<()>;

    /// Delete (absent keys are fine).
    fn delete(&mut self, key: &[u8]) -> StoreResult<()>;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>>;

    /// Collect a bounded range.
    fn scan(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Collect every `(key, value)` whose key starts with `prefix`.
    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Range iteration; `f` returning `false` stops early.
    fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> StoreResult<()>;

    /// Make every acked write durable (WAL fsync).
    fn sync(&mut self) -> StoreResult<()>;

    /// Durability barrier + log truncation: B+Tree flushes pages, LSM
    /// seals the memtable into a run. Both truncate the WAL after.
    fn checkpoint(&mut self) -> StoreResult<()>;

    /// Open a pinned point-in-time view (see [`SnapshotView`]).
    fn snapshot(&self) -> StoreResult<Box<dyn SnapshotView>>;

    /// The epoch a snapshot taken right now would pin (monotonic; bumps
    /// on state transitions). Comparing a held snapshot's
    /// [`SnapshotView::epoch`] against this measures its staleness.
    fn epoch(&self) -> u64;

    /// Register the engine's instruments with `registry`.
    fn attach_registry(&mut self, registry: &MetricsRegistry);

    /// Verify internal invariants (tests / debugging).
    fn check(&mut self) -> StoreResult<()>;
}

/// Open an in-memory engine of the given kind with default options.
pub fn open_memory(kind: EngineKind) -> StoreResult<Box<dyn Engine>> {
    match kind {
        EngineKind::BTree => Ok(Box::new(BTreeEngine::new(KvStore::open_memory()?))),
        EngineKind::Lsm => Ok(Box::new(LsmStore::open_memory()?)),
    }
}

/// Open (or create) an on-disk engine of the given kind under `dir`.
pub fn open_dir(kind: EngineKind, dir: &Path, name: &str) -> StoreResult<Box<dyn Engine>> {
    match kind {
        EngineKind::BTree => Ok(Box::new(BTreeEngine::new(KvStore::open_dir(
            dir,
            name,
            KvStoreOptions::default(),
        )?))),
        EngineKind::Lsm => Ok(Box::new(LsmStore::open_dir(
            dir.join(name),
            LsmOptions::default(),
        )?)),
    }
}

/// [`KvStore`] behind the [`Engine`] interface. The B+Tree mutates pages
/// in place and its inherent reads take `&mut` (page-cache bookkeeping),
/// so the store sits behind a mutex to serve the trait's `&self` reads —
/// the same exclusion the old `&mut` trait forced on every caller, now
/// an implementation detail of the one engine that needs it. Snapshots
/// materialize a full copy of the tree (there is nothing immutable to
/// pin) — correct MVCC semantics at O(n) cost.
pub struct BTreeEngine {
    kv: Mutex<KvStore>,
    /// Bumped on every write; what [`Engine::epoch`] and snapshot epochs
    /// report. (The B+Tree has no run-set epoch of its own.)
    version: AtomicU64,
}

impl BTreeEngine {
    pub fn new(kv: KvStore) -> BTreeEngine {
        BTreeEngine {
            kv: Mutex::new(kv),
            version: AtomicU64::new(0),
        }
    }

    /// The underlying store (escape hatch for harnesses that need
    /// `wal_mut` or `stats`).
    pub fn kv(&mut self) -> &mut KvStore {
        self.kv.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    fn kv_locked(&self) -> std::sync::MutexGuard<'_, KvStore> {
        self.kv.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Engine for BTreeEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::BTree
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> StoreResult<()> {
        self.kv
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .put(key, value)?;
        self.version.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> StoreResult<()> {
        self.kv
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .delete(key)?;
        self.version.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        self.kv_locked().get(key)
    }

    fn scan(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        self.kv_locked().scan(start, end)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Vec<u8>, Vec<u8>)>> {
        self.kv_locked().scan_prefix(prefix)
    }

    fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> StoreResult<()> {
        self.kv_locked().for_each_range(start, end, |k, v| f(k, v))
    }

    fn sync(&mut self) -> StoreResult<()> {
        self.kv
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .wal_mut()
            .sync()
    }

    fn checkpoint(&mut self) -> StoreResult<()> {
        self.kv
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .checkpoint()
    }

    fn snapshot(&self) -> StoreResult<Box<dyn SnapshotView>> {
        let mut entries = BTreeMap::new();
        self.kv_locked()
            .for_each_range(Bound::Unbounded, Bound::Unbounded, |k, v| {
                entries.insert(k.to_vec(), v.to_vec());
                true
            })?;
        Ok(Box::new(MaterializedSnapshot {
            epoch: self.version.load(Ordering::Relaxed),
            entries,
        }))
    }

    fn epoch(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.kv
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .attach_registry(registry);
    }

    fn check(&mut self) -> StoreResult<()> {
        self.kv.get_mut().unwrap_or_else(|e| e.into_inner()).check()
    }
}

/// A fully-copied snapshot (the B+Tree fallback).
pub struct MaterializedSnapshot {
    epoch: u64,
    entries: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl SnapshotView for MaterializedSnapshot {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.entries.get(key).cloned()
    }

    fn for_each_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) {
        match (start, end) {
            (Bound::Included(s) | Bound::Excluded(s), Bound::Included(e) | Bound::Excluded(e))
                if s > e =>
            {
                return
            }
            (Bound::Excluded(s), Bound::Excluded(e)) if s == e => return,
            _ => {}
        }
        for (k, v) in self.entries.range::<[u8], _>((start, end)) {
            if !f(k, v) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parsing() {
        assert_eq!(EngineKind::parse("btree"), Some(EngineKind::BTree));
        assert_eq!(EngineKind::parse(" LSM "), Some(EngineKind::Lsm));
        assert_eq!(EngineKind::parse("paper"), None);
        assert_eq!(EngineKind::BTree.name(), "btree");
        assert_eq!(EngineKind::Lsm.name(), "lsm");
    }

    fn exercise(mut engine: Box<dyn Engine>) {
        engine.put(b"a", b"1").unwrap();
        engine.put(b"b", b"2").unwrap();
        engine.delete(b"a").unwrap();
        assert_eq!(engine.get(b"a").unwrap(), None);
        assert_eq!(engine.get(b"b").unwrap(), Some(b"2".to_vec()));
        let snap = engine.snapshot().unwrap();
        engine.put(b"b", b"changed").unwrap();
        engine.put(b"c", b"3").unwrap();
        engine.checkpoint().unwrap();
        assert_eq!(snap.get(b"b"), Some(b"2".to_vec()), "snapshot is pinned");
        assert_eq!(snap.get(b"c"), None);
        assert_eq!(
            snap.scan(Bound::Unbounded, Bound::Unbounded),
            vec![(b"b".to_vec(), b"2".to_vec())]
        );
        assert_eq!(
            engine.scan_prefix(b"b").unwrap(),
            vec![(b"b".to_vec(), b"changed".to_vec())]
        );
        assert!(
            engine.epoch() >= snap.epoch(),
            "live epoch is never behind a held snapshot"
        );
        engine.check().unwrap();
    }

    #[test]
    fn both_engines_satisfy_the_trait_contract() {
        for kind in [EngineKind::BTree, EngineKind::Lsm] {
            let engine = open_memory(kind).unwrap();
            assert_eq!(engine.kind(), kind);
            exercise(engine);
        }
    }

    #[test]
    fn reads_through_shared_references_work() {
        let mut engine = open_memory(EngineKind::Lsm).unwrap();
        engine.put(b"k", b"v").unwrap();
        let shared: &dyn Engine = engine.as_ref();
        assert_eq!(shared.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(shared.scan_prefix(b"k").unwrap().len(), 1);
        let snap = shared.snapshot().unwrap();
        assert_eq!(snap.get(b"k"), Some(b"v".to_vec()));
    }
}
