//! # memex-store — storage substrate for Memex
//!
//! The Memex paper (§3) manages server state with *two* storage mechanisms:
//!
//! 1. a relational database (Oracle/DB2 in the paper) for **metadata** about
//!    pages, links, users and topics — reproduced here by [`rel`], a compact
//!    typed relational engine with heap tables, B+Tree primary and secondary
//!    indexes and predicate scans;
//! 2. a lightweight Berkeley DB storage manager for **fine-grained
//!    term-level data** — reproduced here by [`kv`], a buffer-pooled,
//!    page-based, WAL-protected B+Tree keyed store with range scans and
//!    crash recovery.
//!
//! The paper further describes "a loosely-consistent versioning system on
//! top of the RDBMS, with a single producer (crawler) and several consumers
//! (indexer and statistical analyzers)"; that is [`version`].
//!
//! All byte-level encoding used across the store lives in [`codec`].
//!
//! Every byte either mechanism persists flows through the [`vfs`] layer —
//! a small `Storage` trait whose `FaultyStorage` decorator and
//! crash-modelling `MemStorage` make I/O failure a deterministic, seeded,
//! first-class test input (see `tests/fault.rs`).

pub mod btree;
pub mod codec;
pub mod engine;
pub mod error;
pub mod kv;
pub mod lsm;
pub mod page;
pub mod pager;
pub mod rel;
pub mod version;
pub mod vfs;
pub mod wal;

pub use engine::{BTreeEngine, Engine, EngineKind, SnapshotView};
pub use error::{StoreError, StoreResult};
pub use kv::{KvStore, KvStoreOptions};
pub use lsm::{LsmOptions, LsmSnapshot, LsmStore};
pub use version::{Consumer, Epoch, VersionedLog};
pub use vfs::{
    FaultConfig, FaultControl, FaultyDir, FaultyStorage, FileDir, FileStorage, MemDir,
    MemDirHandle, MemHandle, MemStorage, Storage, StorageDir,
};
