//! Model-based property test for the relational engine: a random stream of
//! inserts/updates/deletes/scans against a `HashMap` reference model, with
//! index creation at arbitrary points (index answers must equal full-scan
//! answers).

use std::collections::HashMap;

use proptest::prelude::*;

use memex_store::rel::{CmpOp, ColType, Column, Database, Predicate, RowId, Schema, Value};
use memex_store::StoreError;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u8, score: i8 },
    Update { pick: usize, score: i8 },
    Delete { pick: usize },
    CreateIndex,
    ScanEq { score: i8 },
    ScanRange { lo: i8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<i8>()).prop_map(|(key, score)| Op::Insert { key, score }),
        2 => (any::<usize>(), any::<i8>()).prop_map(|(pick, score)| Op::Update { pick, score }),
        2 => any::<usize>().prop_map(|pick| Op::Delete { pick }),
        1 => Just(Op::CreateIndex),
        2 => any::<i8>().prop_map(|score| Op::ScanEq { score }),
        2 => any::<i8>().prop_map(|lo| Op::ScanRange { lo }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rel_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut db = Database::open_memory().unwrap();
        let t = db
            .create_table(
                Schema::new(
                    "items",
                    vec![Column::unique("key", ColType::Text), Column::new("score", ColType::Int)],
                )
                .unwrap(),
            )
            .unwrap();
        // Model: rowid -> (key, score); plus key uniqueness set.
        let mut model: HashMap<RowId, (u8, i8)> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { key, score } => {
                    let row = vec![Value::Text(format!("k{key}")), Value::Int(i64::from(score))];
                    let dup = model.values().any(|&(k, _)| k == key);
                    match db.insert(&t, row) {
                        Ok(rowid) => {
                            prop_assert!(!dup, "insert of duplicate key {key} succeeded");
                            model.insert(rowid, (key, score));
                        }
                        Err(StoreError::Duplicate(_)) => prop_assert!(dup),
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                    }
                }
                Op::Update { pick, score } => {
                    let mut ids: Vec<RowId> = model.keys().copied().collect();
                    ids.sort_unstable();
                    if ids.is_empty() {
                        continue;
                    }
                    let rowid = ids[pick % ids.len()];
                    let key = model[&rowid].0;
                    db.update(
                        &t,
                        rowid,
                        vec![Value::Text(format!("k{key}")), Value::Int(i64::from(score))],
                    )
                    .unwrap();
                    model.insert(rowid, (key, score));
                }
                Op::Delete { pick } => {
                    let mut ids: Vec<RowId> = model.keys().copied().collect();
                    ids.sort_unstable();
                    if ids.is_empty() {
                        prop_assert!(!db.delete(&t, 1).unwrap_or(false) || !model.is_empty());
                        continue;
                    }
                    let rowid = ids[pick % ids.len()];
                    prop_assert!(db.delete(&t, rowid).unwrap());
                    model.remove(&rowid);
                }
                Op::CreateIndex => {
                    db.create_index(&t, "score").unwrap();
                }
                Op::ScanEq { score } => {
                    let got = db.scan(&t, &Predicate::eq("score", Value::Int(i64::from(score)))).unwrap();
                    let mut got_ids: Vec<RowId> = got.iter().map(|&(id, _)| id).collect();
                    got_ids.sort_unstable();
                    let mut want: Vec<RowId> = model
                        .iter()
                        .filter(|(_, &(_, s))| s == score)
                        .map(|(&id, _)| id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got_ids, want);
                }
                Op::ScanRange { lo } => {
                    let got = db
                        .scan(&t, &Predicate::cmp("score", CmpOp::Ge, Value::Int(i64::from(lo))))
                        .unwrap();
                    let mut got_ids: Vec<RowId> = got.iter().map(|&(id, _)| id).collect();
                    got_ids.sort_unstable();
                    let mut want: Vec<RowId> = model
                        .iter()
                        .filter(|(_, &(_, s))| s >= lo)
                        .map(|(&id, _)| id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got_ids, want);
                }
            }
        }
        // Final full-table agreement.
        prop_assert_eq!(db.count(&t).unwrap(), model.len() as u64);
        for (&rowid, &(key, score)) in &model {
            let row = db.get(&t, rowid).unwrap().expect("model row exists");
            let want_key = format!("k{key}");
            prop_assert_eq!(row[0].as_text().unwrap(), want_key.as_str());
            prop_assert_eq!(row[1].as_int().unwrap(), i64::from(score));
        }
    }
}
