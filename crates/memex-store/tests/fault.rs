//! Deterministic fault-injection harness for the storage substrate.
//!
//! Everything here is reproducible from a seed: `MemStorage` models an OS
//! page cache over a disk (synced bytes are durable, unsynced writes may
//! vanish at a crash — possibly torn mid-write), and `FaultyStorage`
//! injects I/O errors from a seeded schedule or a scripted `FaultControl`.
//!
//! The central property is **prefix consistency**: after running an
//! arbitrary operation sequence against a storage engine, crashing at an
//! arbitrary point, and reopening, the recovered state must equal the
//! model state after some prefix `p` of the acknowledged operations with
//! `synced ≤ p ≤ acked` — every operation covered by a sync survives, and
//! nothing that was never acknowledged is ever resurrected.
//!
//! The harness is **engine-parametric**: one test body runs against both
//! the B+Tree `KvStore` and the LSM engine through the shared [`Engine`]
//! trait (the [`Rig`] below knows how to crash and reopen each). Engine
//! internals — checkpoint windows for the B+Tree, seal/compaction
//! barriers for the LSM — get their own scripted schedules on top.
//!
//! Run a specific schedule with `PROPTEST_SEED=<n> cargo test -p
//! memex-store --test fault` (this is what CI's fault-matrix job does).

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use proptest::prelude::*;

use memex_obs::MetricsRegistry;
use memex_store::engine::{BTreeEngine, Engine, EngineKind};
use memex_store::kv::{KvStore, KvStoreOptions};
use memex_store::lsm::{LsmOptions, LsmStore};
use memex_store::vfs::{
    FaultConfig, FaultControl, FaultyDir, FaultyStorage, MemDir, MemDirHandle, MemHandle,
    MemStorage, Storage,
};
use memex_store::wal::{Wal, WalRecord};

// ---------------------------------------------------------------------------
// Operation model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    /// `Wal::sync` — establishes a durability watermark.
    Sync,
    /// Full checkpoint — flushes the tree and truncates the log.
    Checkpoint,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet so operations collide often (the interesting case).
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(0u8)],
        1..6,
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => key_strategy().prop_map(Op::Delete),
        1 => Just(Op::Sync),
        1 => Just(Op::Checkpoint),
    ]
}

/// Reference state after the first `p` operations.
fn model_at(ops: &[Op], p: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut m = BTreeMap::new();
    for op in &ops[..p] {
        match op {
            Op::Put(k, v) => {
                m.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                m.remove(k);
            }
            Op::Sync | Op::Checkpoint => {}
        }
    }
    m
}

fn small_opts() -> KvStoreOptions {
    KvStoreOptions {
        // Small pool so the no-steal buffer pool overflows and exercises
        // the sync-log-then-flush path mid-run.
        pool_capacity: 8,
        // The harness drives checkpoints explicitly.
        checkpoint_bytes: u64::MAX,
        sync_every_append: false,
    }
}

fn reopen(wal: &MemHandle, db: &MemHandle, opts: KvStoreOptions) -> KvStore {
    KvStore::open_with_storage(
        Box::new(MemStorage::from_bytes(wal.current_bytes())),
        Box::new(MemStorage::from_bytes(db.current_bytes())),
        opts,
    )
    .expect("reopen after crash must succeed")
}

fn contents(kv: &mut KvStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    kv.scan(Bound::Unbounded, Bound::Unbounded).unwrap()
}

// ---------------------------------------------------------------------------
// Engine-parametric rig
// ---------------------------------------------------------------------------

fn small_lsm_opts() -> LsmOptions {
    LsmOptions {
        // Tiny budget so random schedules seal mid-stream (the
        // interesting case: crashes land between WAL and run state).
        memtable_bytes: 512,
        compact_min_runs: 3,
        // The harness drives compaction explicitly and deterministically.
        background_compaction: false,
        sync_every_append: false,
    }
}

/// Where a crash lands for each engine: handles on the raw in-memory
/// devices, so the harness can cut power (`crash`) and reopen over the
/// surviving bytes.
enum CrashSite {
    BTree { wal: MemHandle, db: MemHandle },
    Lsm { dir: MemDir, handle: MemDirHandle },
}

impl CrashSite {
    /// Power cut: each device keeps its durable bytes plus a
    /// seeded-random prefix of the unsynced writes (final write possibly
    /// torn).
    fn crash(&self, seed: u64) {
        match self {
            CrashSite::BTree { wal, db } => {
                wal.crash(seed);
                db.crash(seed ^ 0x9E37_79B9_7F4A_7C15);
            }
            CrashSite::Lsm { handle, .. } => handle.crash(seed),
        }
    }

    /// Reopen the engine over whatever the crash left behind.
    fn reopen(&self) -> Box<dyn Engine> {
        match self {
            CrashSite::BTree { wal, db } => {
                Box::new(BTreeEngine::new(reopen(wal, db, small_opts())))
            }
            CrashSite::Lsm { dir, .. } => Box::new(
                LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts())
                    .expect("reopen after crash must succeed"),
            ),
        }
    }
}

/// One engine under test plus the crash controls for its storage.
struct Rig {
    engine: Box<dyn Engine>,
    site: CrashSite,
}

fn open_rig(kind: EngineKind) -> Rig {
    match kind {
        EngineKind::BTree => {
            let wal_storage = MemStorage::new();
            let wal = wal_storage.handle();
            let db_storage = MemStorage::new();
            let db = db_storage.handle();
            let kv = KvStore::open_with_storage(
                Box::new(wal_storage),
                Box::new(db_storage),
                small_opts(),
            )
            .unwrap();
            Rig {
                engine: Box::new(BTreeEngine::new(kv)),
                site: CrashSite::BTree { wal, db },
            }
        }
        EngineKind::Lsm => {
            let dir = MemDir::new();
            let handle = dir.handle();
            let store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts()).unwrap();
            Rig {
                engine: Box::new(store),
                site: CrashSite::Lsm { dir, handle },
            }
        }
    }
}

/// Like [`open_rig`], but the engine's storage sits behind a
/// [`FaultControl`] script (the B+Tree faults its WAL device; the LSM
/// faults the whole directory — WAL, runs and manifest alike). Reopening
/// via [`CrashSite::reopen`] always goes through the unfaulted devices.
fn open_faulty_rig(kind: EngineKind, cfg: FaultConfig) -> (Rig, FaultControl) {
    match kind {
        EngineKind::BTree => {
            let wal_inner = MemStorage::new();
            let wal = wal_inner.handle();
            let wal_storage = FaultyStorage::new(wal_inner, cfg);
            let ctl = wal_storage.control();
            let db_storage = MemStorage::new();
            let db = db_storage.handle();
            let kv = KvStore::open_with_storage(
                Box::new(wal_storage),
                Box::new(db_storage),
                small_opts(),
            )
            .unwrap();
            (
                Rig {
                    engine: Box::new(BTreeEngine::new(kv)),
                    site: CrashSite::BTree { wal, db },
                },
                ctl,
            )
        }
        EngineKind::Lsm => {
            let dir = MemDir::new();
            let handle = dir.handle();
            let faulty = FaultyDir::new(dir.clone(), cfg);
            let ctl = faulty.control();
            let store = LsmStore::open_with_dir(Arc::new(faulty), small_lsm_opts()).unwrap();
            (
                Rig {
                    engine: Box::new(store),
                    site: CrashSite::Lsm { dir, handle },
                },
                ctl,
            )
        }
    }
}

/// Does `recovered` equal `model_at(ops, p)` for some `synced <= p <=
/// ops.len()`? Returns the matching prefix length.
fn matching_prefix(recovered: &[(Vec<u8>, Vec<u8>)], ops: &[Op], synced: usize) -> Option<usize> {
    (synced..=ops.len()).find(|&p| {
        let m = model_at(ops, p);
        recovered.len() == m.len()
            && recovered
                .iter()
                .all(|(k, v)| m.get(k).map(|mv| mv == v).unwrap_or(false))
    })
}

// ---------------------------------------------------------------------------
// Crash-recovery property
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Run a random op sequence, crash at an arbitrary (seeded) point in
    /// the unsynced write stream, reopen, and check prefix consistency:
    /// the recovered state is `model(p)` for some `synced <= p <= acked`.
    /// One body, both engines — the LSM's tiny memtable budget forces
    /// mid-stream auto-seals, so crashes land between WAL, run files and
    /// manifest records, not just inside the log.
    #[test]
    fn crash_recovery_is_prefix_consistent(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        crash_seed in any::<u64>(),
    ) {
        for kind in [EngineKind::BTree, EngineKind::Lsm] {
            let Rig { mut engine, site } = open_rig(kind);

            let mut synced = 0usize;
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Put(k, v) => {
                        engine.put(k, v).unwrap();
                    }
                    Op::Delete(k) => {
                        engine.delete(k).unwrap();
                    }
                    Op::Sync => {
                        engine.sync().unwrap();
                        synced = i + 1;
                    }
                    Op::Checkpoint => {
                        engine.checkpoint().unwrap();
                        synced = i + 1;
                    }
                }
            }
            let acked = ops.len();
            drop(engine);

            site.crash(crash_seed);

            let mut engine = site.reopen();
            engine.check().unwrap();
            let recovered = engine.scan(Bound::Unbounded, Bound::Unbounded).unwrap();

            prop_assert!(
                matching_prefix(&recovered, &ops, synced).is_some(),
                "{}: recovered state is not a prefix of acked ops \
                 (synced={synced}, acked={acked}, crash_seed={crash_seed}, \
                  recovered {} entries)",
                kind.name(),
                recovered.len(),
            );

            // And the reopened store keeps working.
            engine.put(b"post-crash", b"ok").unwrap();
            prop_assert_eq!(engine.get(b"post-crash").unwrap().unwrap(), b"ok".to_vec());
        }
    }

    /// Cut the WAL at *every* byte offset: replay must never fail, must
    /// yield a prefix of the appended records, and — after its torn-tail
    /// repair — must leave a log that appends and replays cleanly.
    #[test]
    fn wal_cut_at_every_byte_offset_recovers_record_prefix(
        kvs in proptest::collection::vec((key_strategy(), key_strategy()), 1..10),
    ) {
        let storage = MemStorage::new();
        let handle = storage.handle();
        let mut wal = Wal::with_storage(Box::new(storage)).unwrap();
        for (k, v) in &kvs {
            wal.append(&WalRecord::Put { key: k.clone(), value: v.clone() }).unwrap();
        }
        let bytes = handle.current_bytes();

        for cut in 0..=bytes.len() {
            let mut wal =
                Wal::with_storage(Box::new(MemStorage::from_bytes(bytes[..cut].to_vec())))
                    .unwrap();
            let replay = wal.replay().unwrap_or_else(|e| {
                panic!("replay failed at cut {cut}/{}: {e}", bytes.len())
            });
            prop_assert!(replay.records.len() <= kvs.len());
            for (i, (_, rec)) in replay.records.iter().enumerate() {
                let (k, v) = &kvs[i];
                prop_assert_eq!(
                    rec,
                    &WalRecord::Put { key: k.clone(), value: v.clone() },
                    "cut at {} replayed a record that was never appended", cut
                );
            }
            // The repaired log accepts and recovers a fresh append.
            wal.append(&WalRecord::Put { key: b"x".to_vec(), value: b"y".to_vec() })
                .unwrap();
            let again = wal.replay().unwrap();
            prop_assert!(!again.torn_tail, "repair at cut {} left garbage", cut);
            prop_assert_eq!(again.records.len(), replay.records.len() + 1);
        }
    }

    /// Flip a byte at *every* offset of an intact WAL: the CRC framing
    /// must confine the damage — replay never fails and yields a prefix
    /// of the appended records (everything before the corrupt frame).
    #[test]
    fn wal_byte_flip_at_every_offset_yields_record_prefix(
        kvs in proptest::collection::vec((key_strategy(), key_strategy()), 1..8),
        xor in 1u8..=255,
    ) {
        let storage = MemStorage::new();
        let handle = storage.handle();
        let mut wal = Wal::with_storage(Box::new(storage)).unwrap();
        for (k, v) in &kvs {
            wal.append(&WalRecord::Put { key: k.clone(), value: v.clone() }).unwrap();
        }
        let bytes = handle.current_bytes();

        for off in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[off] ^= xor;
            let mut wal = Wal::with_storage(Box::new(MemStorage::from_bytes(mutated))).unwrap();
            let replay = wal.replay().unwrap_or_else(|e| {
                panic!("replay failed with flip at {off}: {e}")
            });
            prop_assert!(replay.torn_tail, "flip at {} went undetected", off);
            prop_assert!(replay.records.len() < kvs.len());
            for (i, (_, rec)) in replay.records.iter().enumerate() {
                let (k, v) = &kvs[i];
                prop_assert_eq!(
                    rec,
                    &WalRecord::Put { key: k.clone(), value: v.clone() },
                    "flip at {} corrupted an earlier record", off
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scripted checkpoint-window faults
// ---------------------------------------------------------------------------

/// `KvStore::checkpoint` step 1 is `Pager::flush`, which must *fsync* the
/// data file before the WAL is truncated. Fail that fsync: the checkpoint
/// must abort with the log intact, so a crash in the window loses nothing.
#[test]
fn failed_data_fsync_aborts_checkpoint_with_wal_intact() {
    let wal_storage = MemStorage::new();
    let wal_handle = wal_storage.handle();
    let db_inner = MemStorage::new();
    let db_handle = db_inner.handle();
    let db_storage = FaultyStorage::new(db_inner, FaultConfig::default());
    let ctl = db_storage.control();

    let mut kv =
        KvStore::open_with_storage(Box::new(wal_storage), Box::new(db_storage), small_opts())
            .unwrap();
    for i in 0..5u8 {
        kv.put(&[b'k', i], &[i]).unwrap();
    }
    kv.wal_mut().sync().unwrap();

    ctl.fail_next_syncs(1);
    assert!(
        kv.checkpoint().is_err(),
        "checkpoint must surface the fsync failure"
    );
    assert_eq!(ctl.injected(), (0, 0, 0, 1));

    // Worst-case crash in the window: only durable bytes survive. The WAL
    // was synced and never truncated, so everything is recoverable.
    let mut kv2 = KvStore::open_with_storage(
        Box::new(MemStorage::from_bytes(wal_handle.durable_bytes())),
        Box::new(MemStorage::from_bytes(db_handle.durable_bytes())),
        small_opts(),
    )
    .unwrap();
    kv2.check().unwrap();
    for i in 0..5u8 {
        assert_eq!(kv2.get(&[b'k', i]).unwrap().unwrap(), vec![i]);
    }

    // The running store stays usable: the retry succeeds and nothing is lost.
    kv.checkpoint().unwrap();
    for i in 0..5u8 {
        assert_eq!(kv.get(&[b'k', i]).unwrap().unwrap(), vec![i]);
    }
}

/// Fail the *log-side* sync inside the checkpoint (after the data flush
/// already fsynced the tree). Every crash outcome in that window is safe:
/// the old log replays idempotently over the flushed tree, or the
/// truncation landed and the tree alone carries the state.
#[test]
fn failed_log_sync_during_checkpoint_is_crash_safe() {
    let wal_inner = MemStorage::new();
    let wal_handle = wal_inner.handle();
    let wal_storage = FaultyStorage::new(wal_inner, FaultConfig::default());
    let ctl = wal_storage.control();
    let db_storage = MemStorage::new();
    let db_handle = db_storage.handle();

    let mut kv =
        KvStore::open_with_storage(Box::new(wal_storage), Box::new(db_storage), small_opts())
            .unwrap();
    for i in 0..5u8 {
        kv.put(&[b'k', i], &[i]).unwrap();
    }
    kv.wal_mut().sync().unwrap();

    // The data flush fsyncs the db side (not scripted); the next *wal*
    // sync — inside Wal::truncate — fails.
    ctl.fail_next_syncs(1);
    assert!(kv.checkpoint().is_err());

    // Crash with every possible surviving prefix of the pending log
    // writes: recovery must always land on exactly the acked state.
    for seed in 0..16u64 {
        let wal_bytes = MemStorage::from_bytes(wal_handle.durable_bytes());
        let wal_probe = wal_bytes.handle();
        // Re-stage the pending ops on a copy and crash it.
        {
            let mut staged: Box<dyn Storage> = Box::new(wal_bytes);
            let _ = staged.set_len(0); // the un-synced truncation
        }
        wal_probe.crash(seed);
        let mut kv2 = KvStore::open_with_storage(
            Box::new(MemStorage::from_bytes(wal_probe.current_bytes())),
            Box::new(MemStorage::from_bytes(db_handle.current_bytes())),
            small_opts(),
        )
        .unwrap();
        kv2.check().unwrap();
        for i in 0..5u8 {
            assert_eq!(
                kv2.get(&[b'k', i]).unwrap().unwrap(),
                vec![i],
                "seed {seed}: acked key lost in checkpoint window"
            );
        }
    }

    // The running store recovers too: retry and carry on.
    kv.checkpoint().unwrap();
    kv.put(b"after", b"ok").unwrap();
    assert_eq!(kv.get(b"after").unwrap().unwrap(), b"ok");
}

/// The review-repro schedule, folded into the harness: a checkpoint runs
/// with *unsynced* WAL records pending, `Pager::flush` lands the new tree
/// durably, and the crash hits before `Wal::truncate` completes. The
/// write-ahead order inside `KvStore::checkpoint` (log sync before data
/// flush) must have made those records durable, otherwise recovery
/// replays a stale log prefix over the newer tree and rolls acked writes
/// backward — the exact bug this schedule originally caught.
#[test]
fn checkpoint_window_crash_with_unsynced_wal_records() {
    let wal_inner = MemStorage::new();
    let wal_handle = wal_inner.handle();
    let wal_storage = FaultyStorage::new(wal_inner, FaultConfig::default());
    let ctl = wal_storage.control();
    let db_storage = MemStorage::new();
    let db_handle = db_storage.handle();

    let mut kv =
        KvStore::open_with_storage(Box::new(wal_storage), Box::new(db_storage), small_opts())
            .unwrap();
    kv.put(b"a", b"1").unwrap();
    kv.wal_mut().sync().unwrap(); // op1 durable in the log
    kv.put(b"a", b"2").unwrap(); // op2: acked, log record NOT synced
    kv.put(b"c", b"3").unwrap(); // op3: acked, log record NOT synced

    // Fail the truncation: models a crash after the data flush, inside
    // the checkpoint window.
    ctl.fail_next_set_lens(1);
    assert!(kv.checkpoint().is_err());
    drop(kv);

    // Power cut: only durable bytes survive on each device.
    let mut kv2 = KvStore::open_with_storage(
        Box::new(MemStorage::from_bytes(wal_handle.durable_bytes())),
        Box::new(MemStorage::from_bytes(db_handle.durable_bytes())),
        small_opts(),
    )
    .unwrap();
    kv2.check().unwrap();
    let a = kv2.get(b"a").unwrap().map(|v| v.to_vec());
    let c = kv2.get(b"c").unwrap().map(|v| v.to_vec());
    let is_prefix = matches!(
        (a.as_deref(), c.as_deref()),
        (Some(b"1"), None) | (Some(b"2"), None) | (Some(b"2"), Some(b"3"))
    );
    assert!(
        is_prefix,
        "recovered state a={a:?} c={c:?} matches no prefix of the acked ops"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generalised checkpoint-window schedule for the seed matrix: random
    /// ops with random sync points, then a checkpoint whose truncation
    /// fails, then a crash. The checkpoint's leading log sync succeeded,
    /// so *every* acked op must survive — recovery lands on exactly the
    /// acked state, regardless of which unsynced device writes the crash
    /// kept.
    #[test]
    fn failed_truncate_checkpoint_recovers_every_acked_op(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        crash_seed in any::<u64>(),
    ) {
        let wal_inner = MemStorage::new();
        let wal_handle = wal_inner.handle();
        let wal_storage = FaultyStorage::new(wal_inner, FaultConfig::default());
        let ctl = wal_storage.control();
        let db_storage = MemStorage::new();
        let db_handle = db_storage.handle();

        let mut kv = KvStore::open_with_storage(
            Box::new(wal_storage),
            Box::new(db_storage),
            small_opts(),
        )
        .unwrap();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    kv.put(k, v).unwrap();
                }
                Op::Delete(k) => {
                    kv.delete(k).unwrap();
                }
                // Only a *durability* op here — the harness drives the one
                // interesting checkpoint itself, below.
                Op::Sync | Op::Checkpoint => {
                    kv.wal_mut().sync().unwrap();
                }
            }
        }

        ctl.fail_next_set_lens(1);
        prop_assert!(kv.checkpoint().is_err(), "truncate failure must surface");
        drop(kv);

        // Crash: durable bytes survive; unsynced writes partially survive
        // per the seed. The failed set_len never reached the device, and
        // the checkpoint already synced the log and flushed the tree, so
        // the crash has nothing left to lose.
        wal_handle.crash(crash_seed);
        db_handle.crash(crash_seed ^ 0x9E37_79B9_7F4A_7C15);

        let mut kv2 = reopen(&wal_handle, &db_handle, small_opts());
        kv2.check().unwrap();
        let recovered = contents(&mut kv2);
        let m = model_at(&ops, ops.len());
        prop_assert_eq!(
            recovered.len(),
            m.len(),
            "checkpoint made every acked op durable; none may vanish"
        );
        for (k, v) in &recovered {
            prop_assert_eq!(m.get(k), Some(v));
        }
    }
}

/// A scripted write failure during an append must not acknowledge the
/// operation, corrupt the store, or poison later operations.
#[test]
fn failed_append_is_not_acked_and_store_survives() {
    let wal_inner = MemStorage::new();
    let wal_storage = FaultyStorage::new(wal_inner, FaultConfig::default());
    let ctl = wal_storage.control();
    let mut kv = KvStore::open_with_storage(
        Box::new(wal_storage),
        Box::new(MemStorage::new()),
        small_opts(),
    )
    .unwrap();

    kv.put(b"ok1", b"1").unwrap();
    ctl.fail_next_writes(1);
    assert!(kv.put(b"denied", b"x").is_err());
    assert!(
        kv.get(b"denied").unwrap().is_none(),
        "failed put must not be visible"
    );
    ctl.tear_next_write(3);
    assert!(kv.put(b"torn", b"x").is_err());
    assert!(kv.get(b"torn").unwrap().is_none());
    kv.put(b"ok2", b"2").unwrap();
    kv.check().unwrap();
    assert_eq!(kv.len(), 2);
    assert!(ctl.injected_total() >= 2);
}

// ---------------------------------------------------------------------------
// Scripted engine-internal barriers (seal, compaction)
// ---------------------------------------------------------------------------

/// March a single injected sync failure across every durability barrier
/// of each engine's checkpoint (B+Tree: leading log sync, truncation
/// sync; LSM: leading WAL sync, run-file sync, manifest sync, WAL
/// truncation sync — i.e. a crash mid-seal at each step), then cut power
/// and reopen. Whichever barrier failed, the recovered state must be a
/// model prefix no older than the last explicit sync.
#[test]
fn scripted_sync_barrier_faults_stay_prefix_consistent() {
    for kind in [EngineKind::BTree, EngineKind::Lsm] {
        let mut checkpoint_errors = 0u32;
        for barrier in 0..5u32 {
            for crash_seed in [3u64, 0xB44D_F00D] {
                let (mut rig, ctl) = open_faulty_rig(kind, FaultConfig::default());

                let mut acked: Vec<Op> = Vec::new();
                for i in 0..30u32 {
                    let k = format!("k{:02}", i % 6).into_bytes();
                    let v = format!("v{i}").into_bytes();
                    rig.engine.put(&k, &v).unwrap();
                    acked.push(Op::Put(k, v));
                }
                rig.engine.sync().unwrap();
                let mut synced = acked.len();
                for i in 0..4u32 {
                    let k = format!("x{i}").into_bytes();
                    rig.engine.put(&k, b"u").unwrap();
                    acked.push(Op::Put(k, b"u".to_vec()));
                }

                // Fail the (barrier+1)-th sync the checkpoint issues;
                // barriers past the checkpoint's sync count simply pass.
                ctl.fail_syncs_after(barrier, 1);
                if rig.engine.checkpoint().is_ok() {
                    synced = acked.len();
                } else {
                    checkpoint_errors += 1;
                }

                let Rig { engine, site } = rig;
                drop(engine);
                site.crash(crash_seed);

                let mut engine = site.reopen();
                engine.check().unwrap();
                let recovered = engine.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
                assert!(
                    matching_prefix(&recovered, &acked, synced).is_some(),
                    "{} barrier {barrier} seed {crash_seed}: \
                     recovery lost acked state (synced={synced})",
                    kind.name(),
                );
                engine.put(b"post-crash", b"ok").unwrap();
            }
        }
        assert!(
            checkpoint_errors > 0,
            "{}: no barrier ever failed — the sweep is vacuous",
            kind.name(),
        );
    }
}

/// Crash mid-seal between the (fully synced) run file and the manifest
/// record that would commit it. The staged manifest record may or may
/// not land at the crash, so recovery must *reconcile*: adopt the run if
/// its record became durable, delete it as an orphan otherwise — counted
/// in `store.recovery.orphan_runs` and never resurrected, its id never
/// re-allocated.
#[test]
fn crash_mid_seal_reconciles_manifest_against_partial_runs() {
    let mut saw_orphan = false;
    let mut saw_adopted = false;
    for crash_seed in [0u64, 1, 7, 42, 0x2000_0101] {
        let dir = MemDir::new();
        let handle = dir.handle();
        let faulty = FaultyDir::new(dir.clone(), FaultConfig::default());
        let ctl = faulty.control();
        let mut store = LsmStore::open_with_dir(Arc::new(faulty), small_lsm_opts()).unwrap();

        for i in 0..4u8 {
            store.put(&[b'k', i], &[i]).unwrap();
        }
        // Seal syncs: #1 leading WAL, #2 run file, #3 manifest. Fail #3:
        // the run file is durable, its manifest record staged but not.
        ctl.fail_syncs_after(2, 1);
        assert!(store.seal().is_err(), "manifest sync failure must surface");
        let orphan_name = handle
            .names()
            .into_iter()
            .find(|n| n.starts_with("run-"))
            .expect("the synced run file must remain for recovery to reconcile");
        drop(store);

        handle.crash(crash_seed);

        let mut store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts())
            .expect("recovery must reconcile the manifest against partial runs");
        let registry = MetricsRegistry::new();
        store.attach_registry(&registry);
        let orphans = registry.snapshot().counter("store.recovery.orphan_runs");
        assert_eq!(orphans, store.stats().recovered_orphan_runs);
        // Every acked op was WAL-durable (the seal's leading log sync),
        // so the full state survives whether or not the record landed.
        for i in 0..4u8 {
            assert_eq!(
                store.get(&[b'k', i]).unwrap().unwrap(),
                vec![i],
                "seed {crash_seed}: acked op lost in the seal window"
            );
        }
        if orphans > 0 {
            saw_orphan = true;
            assert!(
                !handle.names().contains(&orphan_name),
                "seed {crash_seed}: orphan run deleted but still listed"
            );
        } else {
            saw_adopted = true;
        }

        // The orphan's id is burned: the recovered store allocates past
        // it, so the deleted file's name is never rewritten while a copy
        // of its manifest record could still be in flight.
        store.put(b"fresh", b"1").unwrap();
        store.seal().unwrap();
        if orphans > 0 {
            assert!(
                handle.names().iter().all(|n| n != &orphan_name),
                "seed {crash_seed}: orphan run id was re-allocated"
            );
        }
        drop(store);

        // Reopen again without a crash: the orphan must not come back,
        // and the sealed state reads back whole.
        let store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts()).unwrap();
        assert_eq!(
            store.stats().recovered_orphan_runs,
            0,
            "seed {crash_seed}: orphan resurrected on the second open"
        );
        for i in 0..4u8 {
            assert_eq!(store.get(&[b'k', i]).unwrap().unwrap(), vec![i]);
        }
        assert_eq!(store.get(b"fresh").unwrap().unwrap(), b"1");
    }
    // The seed set must exercise both reconciliation outcomes, or the
    // test silently stops covering one of them.
    assert!(
        saw_orphan,
        "no seed left the staged manifest record undurable"
    );
    assert!(saw_adopted, "no seed landed the staged manifest record");
}

/// Crash mid-compaction at each of its durability barriers (merged-run
/// sync, manifest sync). Compaction is pure reorganization — every input
/// is already sealed and durable — so recovery must land on exactly the
/// pre-crash logical state, and a retried compaction must converge.
#[test]
fn crash_mid_compaction_preserves_sealed_state() {
    for barrier in 0..2u32 {
        for crash_seed in [5u64, 0xFACE_F00D] {
            let dir = MemDir::new();
            let handle = dir.handle();
            let faulty = FaultyDir::new(dir.clone(), FaultConfig::default());
            let ctl = faulty.control();
            let mut store = LsmStore::open_with_dir(Arc::new(faulty), small_lsm_opts()).unwrap();

            // Three overlapping runs with updates and a tombstone.
            for (round, base) in [(0u8, 0u8), (1, 2), (2, 4)] {
                for i in base..base + 4 {
                    store.put(&[b'k', i], &[round, i]).unwrap();
                }
                if round == 2 {
                    store.delete(&[b'k', 0]).unwrap();
                }
                store.seal().unwrap();
            }
            assert!(store.run_count() >= 3);
            let expected = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();

            // Compaction syncs: #1 merged-run file, #2 manifest record.
            ctl.fail_syncs_after(barrier, 1);
            assert!(
                store.compact_now().is_err(),
                "barrier {barrier}: compaction sync failure must surface"
            );
            drop(store);

            handle.crash(crash_seed);

            let mut store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts())
                .expect("recovery after a mid-compaction crash");
            Engine::check(&mut store).unwrap();
            assert_eq!(
                store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
                expected,
                "barrier {barrier} seed {crash_seed}: sealed state changed"
            );
            // Retry converges: one run, same contents. (If the staged
            // manifest record landed, the merge is already installed and
            // the retry is a no-op.)
            let _ = store.compact_now().unwrap();
            assert_eq!(store.run_count(), 1);
            assert_eq!(
                store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
                expected
            );
        }
    }
}

/// Crash mid-**tier**-compaction at each durability barrier (merged-run
/// sync, manifest sync), with a tombstone riding in the merged tier whose
/// live value sits in a deeper run. Beyond what the full-merge crash test
/// covers, recovery must also preserve the tier structure (levels stay
/// non-decreasing, `check` passes) and must never resurrect the deleted
/// key — the merged young tier keeps its tombstone because it is not a
/// bottom merge.
#[test]
fn crash_mid_tier_compaction_preserves_state_and_levels() {
    for barrier in 0..2u32 {
        for crash_seed in [9u64, 0xC0FF_EE42] {
            let dir = MemDir::new();
            let handle = dir.handle();
            let faulty = FaultyDir::new(dir.clone(), FaultConfig::default());
            let ctl = faulty.control();
            let mut store = LsmStore::open_with_dir(Arc::new(faulty), small_lsm_opts()).unwrap();

            // A deep (level-1) run holding a key the young tier deletes.
            store.put(b"old", b"live").unwrap();
            store.put(b"base", b"1").unwrap();
            store.seal().unwrap();
            store.put(b"base2", b"2").unwrap();
            store.seal().unwrap();
            assert!(store.compact_tier_now().unwrap());
            assert_eq!(
                store
                    .run_levels()
                    .iter()
                    .map(|&(_, l)| l)
                    .collect::<Vec<_>>(),
                vec![1]
            );
            store.delete(b"old").unwrap();
            store.put(b"y1", b"3").unwrap();
            store.seal().unwrap();
            store.put(b"y2", b"4").unwrap();
            store.seal().unwrap();
            let expected = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
            assert!(expected.iter().all(|(k, _)| k != b"old"));

            // Tier-merge syncs: #1 merged-run file, #2 manifest record.
            ctl.fail_syncs_after(barrier, 1);
            assert!(
                store.compact_tier_now().is_err(),
                "barrier {barrier}: tier-compaction sync failure must surface"
            );
            drop(store);

            handle.crash(crash_seed);

            let mut store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts())
                .expect("recovery after a mid-tier-compaction crash");
            Engine::check(&mut store).unwrap();
            assert_eq!(
                store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
                expected,
                "barrier {barrier} seed {crash_seed}: sealed state changed"
            );
            assert_eq!(
                store.get(b"old").unwrap(),
                None,
                "barrier {barrier} seed {crash_seed}: tier crash resurrected a deleted key"
            );
            // Retried tier merges converge without changing the state.
            while store.compact_tier_now().unwrap() {}
            Engine::check(&mut store).unwrap();
            assert_eq!(
                store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
                expected
            );
            assert_eq!(store.get(b"old").unwrap(), None);
            // And the full merge still collapses everything to one run.
            let _ = store.compact_now().unwrap();
            assert_eq!(store.run_count(), 1);
            assert_eq!(
                store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
                expected
            );
        }
    }
}

/// A store seeded with a legacy v1-format run must upgrade to v2 through
/// compaction even when a crash interrupts the upgrade: whichever side of
/// the crash the manifest record lands on, the v1 data stays readable,
/// and a clean retry leaves every live run in v2 format.
#[test]
fn v1_runs_upgrade_to_v2_across_a_crash() {
    for crash_seed in [0u64, 11, 0xBEEF] {
        let dir = MemDir::new();
        let handle = dir.handle();
        let faulty = FaultyDir::new(dir.clone(), FaultConfig::default());
        let ctl = faulty.control();
        let mut store = LsmStore::open_with_dir(Arc::new(faulty), small_lsm_opts()).unwrap();

        store
            .install_v1_run(&[
                (b"legacy-a".to_vec(), Some(b"1".to_vec())),
                (b"legacy-b".to_vec(), Some(b"2".to_vec())),
            ])
            .unwrap();
        store.put(b"fresh", b"3").unwrap();
        store.seal().unwrap();
        assert!(
            store.run_formats().contains(&1),
            "setup must leave a live v1 run"
        );
        let expected = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();

        // Fail the compaction's manifest sync (#2): the merged v2 run is
        // durable, the record committing it is staged but not.
        ctl.fail_syncs_after(1, 1);
        assert!(store.compact_now().is_err());
        drop(store);

        handle.crash(crash_seed);

        let mut store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts())
            .expect("recovery must load v1 and v2 runs alike");
        Engine::check(&mut store).unwrap();
        assert_eq!(
            store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
            expected,
            "seed {crash_seed}: upgrade crash changed the logical state"
        );
        assert_eq!(store.get(b"legacy-a").unwrap().unwrap(), b"1");
        // A clean compaction finishes the upgrade: v2 everywhere.
        let _ = store.compact_now().unwrap();
        assert!(
            store.run_formats().iter().all(|&f| f == 2),
            "seed {crash_seed}: v1 run survived the upgrade compaction"
        );
        assert_eq!(
            store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
            expected
        );
    }
}

// ---------------------------------------------------------------------------
// Tiered compaction vs. flat model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TierOp {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Seal,
    /// One tier merge ([`LsmStore::compact_tier_now`]).
    CompactTier,
    /// Tier merges to fixpoint plus the bottom merge
    /// ([`LsmStore::compact_now`]).
    CompactFull,
    /// Sync, power-cut with this seed, reopen.
    Crash(u64),
}

fn tier_op_strategy() -> impl Strategy<Value = TierOp> {
    prop_oneof![
        5 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(k, v)| TierOp::Put(k, v)),
        2 => key_strategy().prop_map(TierOp::Delete),
        2 => Just(TierOp::Seal),
        2 => Just(TierOp::CompactTier),
        1 => Just(TierOp::CompactFull),
        1 => any::<u64>().prop_map(TierOp::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of writes, seals, per-tier merges, full merges
    /// and (synced) crashes leaves the tiered store read-equivalent to
    /// the flat `BTreeMap` model — point reads, bloom filters and sparse
    /// indexes included — both with and without a legacy v1-format run
    /// at the bottom of the stack.
    #[test]
    fn tiered_compaction_is_read_equivalent_to_flat_model(
        seed_v1 in any::<bool>(),
        ops in proptest::collection::vec(tier_op_strategy(), 1..48),
    ) {
        let dir = MemDir::new();
        let handle = dir.handle();
        let mut store =
            LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        if seed_v1 {
            let legacy = [
                (b"a".to_vec(), Some(b"v1".to_vec())),
                (b"b".to_vec(), Some(b"v1".to_vec())),
            ];
            store.install_v1_run(&legacy).unwrap();
            for (k, v) in &legacy {
                model.insert(k.clone(), v.clone().unwrap());
            }
            prop_assert!(store.run_formats().contains(&1));
        }
        for op in &ops {
            match op {
                TierOp::Put(k, v) => {
                    store.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                TierOp::Delete(k) => {
                    store.delete(k).unwrap();
                    model.remove(k);
                }
                TierOp::Seal => store.seal().unwrap(),
                TierOp::CompactTier => {
                    let _ = store.compact_tier_now().unwrap();
                }
                TierOp::CompactFull => {
                    let _ = store.compact_now().unwrap();
                }
                TierOp::Crash(seed) => {
                    store.sync().unwrap();
                    drop(store);
                    handle.crash(*seed);
                    store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts())
                        .expect("reopen after synced crash");
                }
            }
            let live = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
            let want: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(&live, &want, "scan diverged after {:?}", op);
            for (k, v) in &want {
                prop_assert_eq!(
                    store.get(k).unwrap().as_ref(),
                    Some(v),
                    "point read diverged after {:?}",
                    op
                );
            }
        }
        Engine::check(&mut store).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Seeded chaos schedule
// ---------------------------------------------------------------------------

/// Run a fixed op stream against storage behind a seeded fault schedule
/// (write errors, torn writes, sync failures), then crash and reopen.
/// Failed operations are simply not acked; the recovered state must be a
/// model prefix of the *acked* sequence — injected faults never corrupt,
/// they only shorten. Both engines, one body: the B+Tree faults its WAL
/// device, the LSM faults the whole directory, so the schedule also
/// lands inside budget-triggered auto-seals (whose failures are
/// deferred, never retracting an acked op).
#[test]
fn seeded_fault_schedule_preserves_prefix_consistency() {
    for kind in [EngineKind::BTree, EngineKind::Lsm] {
        for seed in [1u64, 7, 42, 0x2000_0101] {
            let cfg = FaultConfig {
                seed,
                read_err_per_10k: 0, // reads must stay reliable for replay
                write_err_per_10k: 800,
                short_write_per_10k: 600,
                sync_err_per_10k: 500,
            };
            let (mut rig, ctl) = open_faulty_rig(kind, cfg);
            let registry = MetricsRegistry::new();
            ctl.attach_registry(&registry);

            // Acked operations in order; failures are dropped (not acked).
            let mut acked: Vec<Op> = Vec::new();
            for i in 0..240u32 {
                let k = format!("k{:02}", i % 24).into_bytes();
                if i % 5 == 4 {
                    let _ = rig.engine.sync(); // may fail: no watermark credit
                } else if i % 7 == 6 {
                    if rig.engine.delete(&k).is_ok() {
                        acked.push(Op::Delete(k));
                    }
                } else {
                    let v = format!("v{i}").into_bytes();
                    if rig.engine.put(&k, &v).is_ok() {
                        acked.push(Op::Put(k, v));
                    }
                }
            }
            assert!(
                ctl.injected_total() > 0,
                "{} seed {seed}: schedule never fired — test is vacuous",
                kind.name(),
            );
            let snap = registry.snapshot();
            assert_eq!(
                snap.counter("fault.injected.write_errors")
                    + snap.counter("fault.injected.short_writes")
                    + snap.counter("fault.injected.sync_errors"),
                ctl.injected_total(),
                "obs mirror must agree with the control handle"
            );

            let Rig { engine, site } = rig;
            drop(engine);
            site.crash(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));

            let mut engine = site.reopen();
            engine.check().unwrap();
            let recovered = engine.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
            assert!(
                matching_prefix(&recovered, &acked, 0).is_some(),
                "{} seed {seed}: recovered state is not a prefix of the acked ops",
                kind.name(),
            );
        }
    }
}

/// LSM compaction chaos: seal/compact cycles under a seeded fault
/// schedule. Reorganization failures only defer the merge — the live
/// view always equals the acked model, a crash recovers a prefix, and a
/// clean retry converges to a single run with nothing lost.
#[test]
fn seeded_compaction_chaos_never_corrupts() {
    for seed in [1u64, 7, 42, 0x2000_0101] {
        let cfg = FaultConfig {
            seed,
            read_err_per_10k: 0,
            write_err_per_10k: 400,
            short_write_per_10k: 300,
            sync_err_per_10k: 400,
        };
        let dir = MemDir::new();
        let handle = dir.handle();
        let faulty = FaultyDir::new(dir.clone(), cfg);
        let ctl = faulty.control();
        let mut store = LsmStore::open_with_dir(Arc::new(faulty), small_lsm_opts()).unwrap();

        let mut acked: Vec<Op> = Vec::new();
        for round in 0..8u32 {
            for i in 0..12u32 {
                let k = format!("k{:02}", (round * 5 + i) % 16).into_bytes();
                let v = format!("v{round}.{i}").into_bytes();
                if store.put(&k, &v).is_ok() {
                    acked.push(Op::Put(k, v));
                }
            }
            // Reorganization under chaos: either may fail, neither may
            // lose or invent data.
            let _ = store.seal();
            let _ = store.compact_now();
        }
        assert!(
            ctl.injected_total() > 0,
            "seed {seed}: schedule never fired — test is vacuous"
        );
        // The live view equals the acked model exactly.
        let live = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
        assert!(
            matching_prefix(&live, &acked, acked.len()).is_some(),
            "seed {seed}: live view diverged from the acked model"
        );
        drop(store);

        handle.crash(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let mut store = LsmStore::open_with_dir(Arc::new(dir.clone()), small_lsm_opts())
            .expect("recovery after compaction chaos");
        Engine::check(&mut store).unwrap();
        let recovered = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
        assert!(
            matching_prefix(&recovered, &acked, 0).is_some(),
            "seed {seed}: recovered state is not a prefix of the acked ops"
        );
        // A clean retry converges without changing the logical state.
        store.seal().unwrap();
        let _ = store.compact_now().unwrap();
        assert!(store.run_count() <= 1);
        assert_eq!(
            store.scan(Bound::Unbounded, Bound::Unbounded).unwrap(),
            recovered,
            "seed {seed}: retried compaction changed the logical state"
        );
    }
}

/// Recovery outcomes surface in `store.recovery.*` once a registry is
/// attached — the observability contract the F3 experiment reads.
#[test]
fn recovery_metrics_report_replay_and_repair() {
    let wal_storage = MemStorage::new();
    let wal_handle = wal_storage.handle();
    let mut kv = KvStore::open_with_storage(
        Box::new(wal_storage),
        Box::new(MemStorage::new()),
        small_opts(),
    )
    .unwrap();
    kv.put(b"a", b"1").unwrap();
    kv.put(b"b", b"2").unwrap();
    kv.wal_mut().sync().unwrap();
    drop(kv);

    // Tear mid-frame: strip the last 3 bytes of the log.
    let bytes = wal_handle.current_bytes();
    let torn = bytes[..bytes.len() - 3].to_vec();
    let mut kv = KvStore::open_with_storage(
        Box::new(MemStorage::from_bytes(torn)),
        Box::new(MemStorage::new()),
        small_opts(),
    )
    .unwrap();
    let registry = MetricsRegistry::new();
    kv.attach_registry(&registry);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("store.recovery.replayed_records"), 1);
    assert_eq!(snap.counter("store.recovery.torn_tails"), 1);
    assert!(snap.counter("store.recovery.repaired_bytes") > 0);
    assert_eq!(kv.stats().recovered_records, 1);
    assert!(kv.stats().recovered_torn_tail);
    assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
    assert!(kv.get(b"b").unwrap().is_none(), "torn record dropped");
}
