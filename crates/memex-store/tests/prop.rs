//! Property-based tests for the storage substrate: the KV store is checked
//! against a `BTreeMap` reference model, the WAL against replay semantics,
//! and the codecs against round-trip + order-preservation laws.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;

use memex_store::codec;
use memex_store::kv::KvStore;
use memex_store::rel::Value;
use memex_store::wal::{Wal, WalRecord};

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Checkpoint,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet so operations collide often (the interesting case).
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(0u8)],
        1..6,
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            key_strategy(),
            proptest::collection::vec(any::<u8>(), 0..20)
        )
            .prop_map(|(k, v)| Op::Put(k, v)),
        key_strategy().prop_map(Op::Delete),
        Just(Op::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The KV store behaves exactly like an in-memory ordered map.
    #[test]
    fn kv_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut kv = KvStore::open_memory().unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let old = kv.put(k, v).unwrap();
                    let model_old = model.insert(k.clone(), v.clone());
                    prop_assert_eq!(old, model_old);
                }
                Op::Delete(k) => {
                    let old = kv.delete(k).unwrap();
                    let model_old = model.remove(k);
                    prop_assert_eq!(old, model_old);
                }
                Op::Checkpoint => kv.checkpoint().unwrap(),
            }
        }
        prop_assert_eq!(kv.len(), model.len() as u64);
        kv.check().unwrap();
        let scanned = kv.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Replaying a WAL after any prefix of appends yields exactly the
    /// records appended since the last checkpoint.
    #[test]
    fn wal_replay_matches_appends(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut wal = Wal::in_memory();
        let mut expected: Vec<WalRecord> = Vec::new();
        for op in &ops {
            let rec = match op {
                Op::Put(k, v) => WalRecord::Put { key: k.clone(), value: v.clone() },
                Op::Delete(k) => WalRecord::Delete { key: k.clone() },
                Op::Checkpoint => WalRecord::Checkpoint,
            };
            wal.append(&rec).unwrap();
            if matches!(rec, WalRecord::Checkpoint) {
                expected.clear();
            } else {
                expected.push(rec);
            }
        }
        let replay = wal.replay().unwrap();
        prop_assert!(!replay.torn_tail);
        let got: Vec<WalRecord> = replay.records.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(got, expected);
    }

    /// Tearing any number of trailing bytes never corrupts the surviving
    /// prefix: replay returns a prefix of the appended records.
    #[test]
    fn wal_tear_yields_record_prefix(
        kvs in proptest::collection::vec((key_strategy(), key_strategy()), 1..20),
        tear in 1u64..64,
    ) {
        let mut wal = Wal::in_memory();
        for (k, v) in &kvs {
            wal.append(&WalRecord::Put { key: k.clone(), value: v.clone() }).unwrap();
        }
        wal.tear_tail(tear).unwrap();
        let replay = wal.replay().unwrap();
        prop_assert!(replay.records.len() <= kvs.len());
        for (i, (_, rec)) in replay.records.iter().enumerate() {
            let (k, v) = &kvs[i];
            prop_assert_eq!(rec, &WalRecord::Put { key: k.clone(), value: v.clone() });
        }
    }

    /// Varint and signed-varint encodings round-trip.
    #[test]
    fn varints_round_trip(u in any::<u64>(), i in any::<i64>()) {
        let mut buf = Vec::new();
        codec::put_uvarint(&mut buf, u);
        codec::put_ivarint(&mut buf, i);
        let mut pos = 0;
        prop_assert_eq!(codec::get_uvarint(&buf, &mut pos).unwrap(), u);
        prop_assert_eq!(codec::get_ivarint(&buf, &mut pos).unwrap(), i);
        prop_assert_eq!(pos, buf.len());
    }

    /// Delta encoding round-trips any strictly increasing sequence.
    #[test]
    fn deltas_round_trip(mut xs in proptest::collection::btree_set(any::<u32>(), 0..200)) {
        let seq: Vec<u64> = xs.iter().map(|&x| u64::from(x)).collect();
        xs.clear();
        let mut buf = Vec::new();
        codec::encode_deltas(&mut buf, &seq).unwrap();
        let mut pos = 0;
        prop_assert_eq!(codec::decode_deltas(&buf, &mut pos).unwrap(), seq);
    }

    /// The ordered value encoding preserves ordering for ints and texts.
    #[test]
    fn ordered_encoding_is_monotone_int(a in any::<i64>(), b in any::<i64>()) {
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        Value::Int(a).encode_ordered(&mut ea);
        Value::Int(b).encode_ordered(&mut eb);
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    #[test]
    fn ordered_encoding_is_monotone_text(a in ".{0,12}", b in ".{0,12}") {
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        Value::Text(a.clone()).encode_ordered(&mut ea);
        Value::Text(b.clone()).encode_ordered(&mut eb);
        prop_assert_eq!(a.as_bytes().cmp(b.as_bytes()), ea.cmp(&eb));
    }

    /// CRC-32 detects any single-byte corruption.
    #[test]
    fn crc_detects_single_byte_flip(data in proptest::collection::vec(any::<u8>(), 1..64), idx in any::<usize>(), flip in 1u8..=255) {
        let before = codec::crc32(&data);
        let mut mutated = data.clone();
        let i = idx % mutated.len();
        mutated[i] ^= flip;
        prop_assert_ne!(before, codec::crc32(&mutated));
    }
}
