//! MVCC acceptance for the LSM engine: a snapshot opened before an
//! ingest burst reads the *exact* pre-burst state with zero blocking —
//! its reads take no lock — while the writer ingests, the tiny memtable
//! budget forces seals, and the background compaction demon merges runs
//! underneath it.
//!
//! This is also the concurrency schedule the sanitizer matrix runs under
//! ThreadSanitizer: writer thread + snapshot reader + compactor demon all
//! touching the shared LSM state at once.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::thread;
use std::time::{Duration, Instant};

use memex_obs::MetricsRegistry;
use memex_store::engine::EngineKind;
use memex_store::lsm::{LsmOptions, LsmStore};

fn burst_opts() -> LsmOptions {
    LsmOptions {
        // Tiny budget: the burst seals every few writes.
        memtable_bytes: 256,
        compact_min_runs: 2,
        background_compaction: true,
        sync_every_append: false,
    }
}

#[test]
fn snapshot_scans_pre_burst_state_while_ingest_and_compaction_run() {
    let mut store = LsmStore::open_memory_opts(burst_opts()).unwrap();
    let registry = MetricsRegistry::new();
    store.attach_registry(&registry);

    // Pre-burst state, spread over sealed runs and the memtable.
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for i in 0..40u32 {
        let (k, v) = (
            format!("k{i:03}").into_bytes(),
            format!("v{i}").into_bytes(),
        );
        store.put(&k, &v).unwrap();
        model.insert(k, v);
    }
    let expected = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
    let snap = store.snapshot();
    let pinned_epoch = snap.epoch();

    // Reader thread: scans the pinned view over and over while the burst
    // runs. Every scan must return the identical pre-burst state.
    let reader_expected = expected.clone();
    let reader = thread::spawn(move || {
        for round in 0..200u32 {
            let mut got = Vec::new();
            snap.for_each_range(Bound::Unbounded, Bound::Unbounded, &mut |k, v| {
                got.push((k.to_vec(), v.to_vec()));
                true
            });
            assert_eq!(got, reader_expected, "round {round}: snapshot view drifted");
            assert_eq!(snap.epoch(), pinned_epoch, "round {round}: epoch moved");
        }
        snap
    });

    // Writer: ingest burst with updates and deletes — seals fire from the
    // memtable budget, and each seal past `compact_min_runs` wakes the
    // background compactor.
    for i in 0..400u32 {
        let k = format!("k{:03}", i % 80).into_bytes();
        let v = format!("w{i}").into_bytes();
        store.put(&k, &v).unwrap();
        model.insert(k, v);
        if i % 16 == 15 {
            let k = format!("k{:03}", (i / 16) % 40).into_bytes();
            store.delete(&k).unwrap();
            model.remove(&k);
        }
    }

    let snap = reader.join().unwrap();

    // The snapshot still reads the pre-burst state after the burst...
    let mut got = Vec::new();
    snap.for_each_range(Bound::Unbounded, Bound::Unbounded, &mut |k, v| {
        got.push((k.to_vec(), v.to_vec()));
        true
    });
    assert_eq!(got, expected);
    // ...while the live store has moved on to the post-burst state.
    assert!(
        store.epoch() > pinned_epoch,
        "burst never advanced the epoch"
    );
    let live = store.scan(Bound::Unbounded, Bound::Unbounded).unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
    assert_eq!(live, want, "live view diverged from the model");

    // The burst really did seal and compact underneath the reader: seals
    // are synchronous, compactions happen on the demon — give it a
    // bounded moment to drain.
    let snap_metrics = registry.snapshot();
    assert!(
        snap_metrics.counter("store.lsm.seals") > 0,
        "burst never sealed"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if registry.snapshot().counter("store.lsm.compactions") > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "background compactor never merged the burst's runs"
        );
        thread::sleep(Duration::from_millis(5));
    }
}

/// The same pinning contract through the engine-neutral trait: both
/// engines hand out `SnapshotView`s that ignore later writes.
#[test]
fn engine_snapshots_pin_their_view_for_both_engines() {
    for kind in [EngineKind::BTree, EngineKind::Lsm] {
        let mut engine = memex_store::engine::open_memory(kind).unwrap();
        for i in 0..10u8 {
            engine.put(&[b'k', i], &[i]).unwrap();
        }
        let view = engine.snapshot().unwrap();
        for i in 0..10u8 {
            engine.put(&[b'k', i], &[i + 100]).unwrap();
        }
        engine.checkpoint().unwrap();
        for i in 0..10u8 {
            assert_eq!(
                view.get(&[b'k', i]),
                Some(vec![i]),
                "{}: snapshot leaked a later write",
                kind.name()
            );
            assert_eq!(engine.get(&[b'k', i]).unwrap(), Some(vec![i + 100]));
        }
    }
}
