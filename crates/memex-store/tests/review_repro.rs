//! Review repro: crash in the checkpoint window between Pager::flush and
//! Wal::truncate, with unsynced WAL records at checkpoint time.

use memex_store::kv::{KvStore, KvStoreOptions};
use memex_store::vfs::{FaultConfig, FaultyStorage, MemStorage};

#[test]
fn checkpoint_window_crash_with_unsynced_wal_records() {
    let opts = KvStoreOptions {
        pool_capacity: 256,
        checkpoint_bytes: u64::MAX,
        sync_every_append: false,
    };
    let wal_inner = MemStorage::new();
    let wal_handle = wal_inner.handle();
    let wal_storage = FaultyStorage::new(wal_inner, FaultConfig::default());
    let ctl = wal_storage.control();
    let db_storage = MemStorage::new();
    let db_handle = db_storage.handle();

    let mut kv =
        KvStore::open_with_storage(Box::new(wal_storage), Box::new(db_storage), opts.clone())
            .unwrap();

    kv.put(b"a", b"1").unwrap();
    kv.wal_mut().sync().unwrap(); // op1 durable in the log
    kv.put(b"a", b"2").unwrap(); // op2: acked, log record NOT synced
    kv.put(b"c", b"3").unwrap(); // op3: acked, log record NOT synced

    // checkpoint(): pager.flush() succeeds (tree with a=2,c=3 is durable),
    // then Wal::truncate fails -> models a crash between flush and truncate.
    ctl.fail_next_set_lens(1);
    assert!(kv.checkpoint().is_err());
    drop(kv);

    // Power cut: only durable bytes survive on each device (a legal crash
    // outcome: zero pending writes survive).
    let mut kv2 = KvStore::open_with_storage(
        Box::new(MemStorage::from_bytes(wal_handle.durable_bytes())),
        Box::new(MemStorage::from_bytes(db_handle.durable_bytes())),
        opts,
    )
    .unwrap();

    let a = kv2.get(b"a").unwrap().map(|v| v.to_vec());
    let c = kv2.get(b"c").unwrap().map(|v| v.to_vec());
    // Valid prefixes of the acked ops:
    //   p=1 -> {a:1}        p=2 -> {a:2}        p=3 -> {a:2, c:3}
    let is_prefix = matches!(
        (a.as_deref(), c.as_deref()),
        (Some(b"1"), None) | (Some(b"2"), None) | (Some(b"2"), Some(b"3"))
    );
    assert!(
        is_prefix,
        "recovered state a={a:?} c={c:?} matches no prefix of the acked ops"
    );
}
