//! Topic taxonomies: rooted, ordered trees of named topics.
//!
//! The same structure serves three roles in Memex: a user's editable
//! folder tree (Fig. 1), the classifier's class hierarchy (ref \[3\]), and
//! the community theme hierarchy synthesised by `memex-cluster` (Fig. 4).

use std::collections::HashMap;

/// Dense topic/node identifier within one taxonomy. The root is always 0.
pub type TopicId = u32;

#[derive(Debug, Clone)]
struct Node {
    name: String,
    parent: Option<TopicId>,
    children: Vec<TopicId>,
    deleted: bool,
}

/// A rooted tree of topics.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    nodes: Vec<Node>,
}

impl Default for Taxonomy {
    fn default() -> Self {
        Self::new()
    }
}

impl Taxonomy {
    /// A taxonomy containing only the root (named "/").
    pub fn new() -> Taxonomy {
        Taxonomy {
            nodes: vec![Node {
                name: "/".to_string(),
                parent: None,
                children: Vec::new(),
                deleted: false,
            }],
        }
    }

    pub const ROOT: TopicId = 0;

    /// Add a child topic under `parent`; returns the new id.
    pub fn add_child(&mut self, parent: TopicId, name: &str) -> TopicId {
        assert!(self.is_live(parent), "parent {parent} does not exist");
        let id = self.nodes.len() as TopicId;
        self.nodes.push(Node {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            deleted: false,
        });
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// Build a path of nested topics (creating missing components), e.g.
    /// `add_path(&["Music", "Western Classical"])`. Returns the leaf id.
    pub fn add_path(&mut self, components: &[&str]) -> TopicId {
        let mut current = Self::ROOT;
        for comp in components {
            current = match self
                .children(current)
                .iter()
                .copied()
                .find(|&c| self.name(c) == *comp)
            {
                Some(existing) => existing,
                None => self.add_child(current, comp),
            };
        }
        current
    }

    /// Is `id` a live (non-deleted, in-range) node?
    pub fn is_live(&self, id: TopicId) -> bool {
        self.nodes.get(id as usize).is_some_and(|n| !n.deleted)
    }

    pub fn name(&self, id: TopicId) -> &str {
        &self.nodes[id as usize].name
    }

    pub fn rename(&mut self, id: TopicId, name: &str) {
        assert!(self.is_live(id));
        self.nodes[id as usize].name = name.to_string();
    }

    pub fn parent(&self, id: TopicId) -> Option<TopicId> {
        self.nodes[id as usize].parent
    }

    /// Live children in insertion order.
    pub fn children(&self, id: TopicId) -> Vec<TopicId> {
        self.nodes[id as usize]
            .children
            .iter()
            .copied()
            .filter(|&c| self.is_live(c))
            .collect()
    }

    /// `/`-joined path from the root (root itself renders as "/").
    pub fn path(&self, id: TopicId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c != Self::ROOT {
                parts.push(self.name(c).to_string());
            }
            cur = self.parent(c);
        }
        parts.reverse();
        if parts.is_empty() {
            "/".to_string()
        } else {
            format!("/{}", parts.join("/"))
        }
    }

    /// All live node ids in pre-order.
    pub fn all_topics(&self) -> Vec<TopicId> {
        let mut out = Vec::new();
        self.preorder(Self::ROOT, &mut out);
        out
    }

    fn preorder(&self, id: TopicId, out: &mut Vec<TopicId>) {
        if !self.is_live(id) {
            return;
        }
        out.push(id);
        for c in self.children(id) {
            self.preorder(c, out);
        }
    }

    /// Live leaves (no live children), pre-order. The root counts as a leaf
    /// only when it is childless.
    pub fn leaves(&self) -> Vec<TopicId> {
        self.all_topics()
            .into_iter()
            .filter(|&t| self.children(t).is_empty())
            .collect()
    }

    /// `id` and all its live descendants.
    pub fn subtree(&self, id: TopicId) -> Vec<TopicId> {
        let mut out = Vec::new();
        self.preorder(id, &mut out);
        out
    }

    /// Is `anc` an ancestor of (or equal to) `id`?
    pub fn is_ancestor_or_self(&self, anc: TopicId, id: TopicId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: TopicId) -> usize {
        let mut d = 0;
        let mut cur = self.parent(id);
        while let Some(c) = cur {
            d += 1;
            cur = self.parent(c);
        }
        d
    }

    /// Move `id` (with its subtree) under `new_parent` — the cut/paste
    /// operation of the folder tab. Panics if it would create a cycle.
    pub fn reparent(&mut self, id: TopicId, new_parent: TopicId) {
        assert!(id != Self::ROOT, "cannot move the root");
        assert!(self.is_live(id) && self.is_live(new_parent));
        assert!(
            !self.is_ancestor_or_self(id, new_parent),
            "reparenting would create a cycle"
        );
        let old_parent = self.nodes[id as usize]
            .parent
            .expect("non-root has a parent");
        self.nodes[old_parent as usize]
            .children
            .retain(|&c| c != id);
        self.nodes[new_parent as usize].children.push(id);
        self.nodes[id as usize].parent = Some(new_parent);
    }

    /// Soft-delete `id` and its subtree.
    pub fn remove(&mut self, id: TopicId) {
        assert!(id != Self::ROOT, "cannot delete the root");
        for t in self.subtree(id) {
            self.nodes[t as usize].deleted = true;
        }
    }

    /// Number of live topics (including the root).
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.deleted).count()
    }

    pub fn is_empty(&self) -> bool {
        false // the root always exists
    }

    /// Lowest common ancestor of two live nodes.
    pub fn lca(&self, a: TopicId, b: TopicId) -> TopicId {
        let mut ancestors = HashMap::new();
        let mut cur = Some(a);
        while let Some(c) = cur {
            ancestors.insert(c, ());
            cur = self.parent(c);
        }
        let mut cur = Some(b);
        while let Some(c) = cur {
            if ancestors.contains_key(&c) {
                return c;
            }
            cur = self.parent(c);
        }
        Self::ROOT
    }

    /// Tree distance between nodes (edges via the LCA).
    pub fn distance(&self, a: TopicId, b: TopicId) -> usize {
        let l = self.lca(a, b);
        self.depth(a) + self.depth(b) - 2 * self.depth(l)
    }

    /// Structural invariants (used by property tests): parent/child links
    /// mirror each other, no cycles, exactly one root.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            let id = i as TopicId;
            if n.deleted {
                continue;
            }
            match n.parent {
                None if id != Self::ROOT => return Err(format!("non-root {id} has no parent")),
                Some(p) => {
                    if !self.is_live(p) {
                        return Err(format!("{id} has dead parent {p}"));
                    }
                    if !self.nodes[p as usize].children.contains(&id) {
                        return Err(format!("{p} does not list child {id}"));
                    }
                }
                None => {}
            }
            for &c in &n.children {
                if self.is_live(c) && self.nodes[c as usize].parent != Some(id) {
                    return Err(format!("child {c} of {id} points elsewhere"));
                }
            }
        }
        // Acyclicity: every node must reach the root.
        for i in 0..self.nodes.len() {
            let id = i as TopicId;
            if !self.is_live(id) {
                continue;
            }
            let mut steps = 0;
            let mut cur = Some(id);
            while let Some(c) = cur {
                if c == Self::ROOT {
                    break;
                }
                cur = self.parent(c);
                steps += 1;
                if steps > self.nodes.len() {
                    return Err(format!("cycle reachable from {id}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn music_tax() -> (Taxonomy, TopicId, TopicId, TopicId) {
        let mut t = Taxonomy::new();
        let music = t.add_child(Taxonomy::ROOT, "Music");
        let classical = t.add_child(music, "Western Classical");
        let cycling = t.add_child(Taxonomy::ROOT, "Cycling");
        (t, music, classical, cycling)
    }

    #[test]
    fn paths_render_like_the_screenshots() {
        let (t, _, classical, _) = music_tax();
        assert_eq!(t.path(classical), "/Music/Western Classical");
        assert_eq!(t.path(Taxonomy::ROOT), "/");
    }

    #[test]
    fn add_path_reuses_existing_components() {
        let (mut t, music, classical, _) = music_tax();
        let again = t.add_path(&["Music", "Western Classical"]);
        assert_eq!(again, classical);
        let jazz = t.add_path(&["Music", "Jazz"]);
        assert_eq!(t.parent(jazz), Some(music));
        assert_eq!(t.children(music).len(), 2);
    }

    #[test]
    fn subtree_leaves_depth() {
        let (t, music, classical, cycling) = music_tax();
        assert_eq!(t.subtree(music), vec![music, classical]);
        assert_eq!(t.leaves(), vec![classical, cycling]);
        assert_eq!(t.depth(classical), 2);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn lca_and_distance() {
        let (t, music, classical, cycling) = music_tax();
        assert_eq!(t.lca(classical, cycling), Taxonomy::ROOT);
        assert_eq!(t.lca(classical, music), music);
        assert_eq!(t.distance(classical, cycling), 3);
        assert_eq!(t.distance(classical, classical), 0);
    }

    #[test]
    fn reparent_cut_paste() {
        let (mut t, music, classical, cycling) = music_tax();
        t.reparent(classical, cycling);
        assert_eq!(t.path(classical), "/Cycling/Western Classical");
        assert!(t.children(music).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn reparent_rejects_cycles() {
        let (mut t, music, classical, _) = music_tax();
        t.reparent(music, classical);
    }

    #[test]
    fn remove_soft_deletes_subtree() {
        let (mut t, music, classical, cycling) = music_tax();
        t.remove(music);
        assert!(!t.is_live(music));
        assert!(!t.is_live(classical));
        assert!(t.is_live(cycling));
        assert_eq!(t.len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn ancestor_queries() {
        let (t, music, classical, cycling) = music_tax();
        assert!(t.is_ancestor_or_self(music, classical));
        assert!(t.is_ancestor_or_self(classical, classical));
        assert!(!t.is_ancestor_or_self(classical, music));
        assert!(!t.is_ancestor_or_self(cycling, classical));
        assert!(t.is_ancestor_or_self(Taxonomy::ROOT, cycling));
    }
}
