//! # memex-learn — learning substrate
//!
//! Implements the paper's §4 classification stack:
//!
//! * [`taxonomy`] — the tree of topics/folders that users edit and the
//!   server mines ("each user has a personal folder/topic space", Fig. 1);
//! * [`nb`] — multinomial naive Bayes with Laplace smoothing and
//!   Fisher-index feature selection, flat or hierarchical (greedy descent
//!   down the taxonomy), after the TAPER system of paper ref \[3\];
//! * [`enhanced`] — the paper's *new* classifier "that combines features
//!   from text, hyperlink and folder placement to offer significantly
//!   boosted accuracy, increasing from a mere 40% accuracy for text-only
//!   learners to about 80%": an iterative relaxation-labelling scheme over
//!   the link graph with folder co-placement evidence;
//! * [`eval`] — accuracy/F1/confusion, seeded splits and k-fold.

pub mod em;
pub mod enhanced;
pub mod eval;
pub mod nb;
pub mod taxonomy;

pub use enhanced::{EnhancedClassifier, EnhancedOptions};
pub use nb::{NaiveBayes, NbOptions};
pub use taxonomy::{Taxonomy, TopicId};
