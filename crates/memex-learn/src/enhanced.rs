//! The paper's new classifier (§4): "a new technique that combines
//! features from text, hyperlink and folder placement to offer
//! significantly boosted accuracy, increasing from a mere 40% accuracy for
//! text-only learners to about 80% with our more elaborate model."
//!
//! Implemented, per the companion work (paper ref \[4\] and Chakrabarti's
//! hypertext categorisation line), as **iterative relaxation labelling**:
//!
//! 1. a text naive Bayes gives every unlabelled document an initial class
//!    belief;
//! 2. each round, a document's belief is re-estimated from three evidence
//!    channels in log space — its own text posterior, the (smoothed)
//!    beliefs of its hyperlink neighbours, and the beliefs of documents a
//!    user co-placed in the same folder;
//! 3. labelled documents are clamped; updates are damped; the process
//!    converges in a handful of rounds.
//!
//! On "front pages" with little text the first channel is weak (~40 %
//! alone) and the latter two recover the signal — the T1 experiment.

use memex_graph::graph::WebGraph;
use memex_text::vocab::TermId;

use crate::nb::{argmax, log_normalize, NaiveBayes, NbOptions};

/// Weights and schedule for relaxation labelling.
#[derive(Debug, Clone, Copy)]
pub struct EnhancedOptions {
    /// Weight of the document's own text posterior.
    pub text_weight: f64,
    /// Weight of the averaged neighbour-belief evidence.
    pub link_weight: f64,
    /// Weight of the averaged folder co-placement evidence.
    pub folder_weight: f64,
    /// Relaxation rounds.
    pub iterations: usize,
    /// Fraction of the old belief retained each round (0 = jump, 1 = frozen).
    pub damping: f64,
    /// Naive Bayes options for the text channel.
    pub nb: NbOptions,
}

impl Default for EnhancedOptions {
    fn default() -> Self {
        EnhancedOptions {
            text_weight: 1.0,
            link_weight: 2.0,
            folder_weight: 2.0,
            iterations: 10,
            damping: 0.3,
            nb: NbOptions::default(),
        }
    }
}

/// A transductive classification problem: all documents up front, some
/// labelled, linked by a hyperlink graph (node id = document index) and
/// grouped by folder co-placement.
pub struct EnhancedProblem<'a> {
    pub num_classes: usize,
    /// Term-frequency pairs per document.
    pub docs: &'a [Vec<(TermId, u32)>],
    /// Hyperlinks among the documents (node ids are document indices).
    pub graph: &'a WebGraph,
    /// Folder co-placement groups: documents one user filed together.
    pub folders: &'a [Vec<usize>],
    /// `Some(class)` for training documents, `None` for targets.
    pub labels: &'a [Option<usize>],
}

/// Output of the enhanced classifier.
#[derive(Debug, Clone)]
pub struct EnhancedResult {
    /// Per-document class beliefs (probability simplex).
    pub beliefs: Vec<Vec<f64>>,
    /// Argmax class per document (labels echoed for labelled docs).
    pub predictions: Vec<usize>,
    /// The text-only naive Bayes predictions, for baseline comparison.
    pub text_only: Vec<usize>,
}

/// The relaxation-labelling classifier.
pub struct EnhancedClassifier {
    opts: EnhancedOptions,
}

impl EnhancedClassifier {
    pub fn new(opts: EnhancedOptions) -> EnhancedClassifier {
        EnhancedClassifier { opts }
    }

    /// Solve a transductive problem.
    pub fn classify(&self, p: &EnhancedProblem<'_>) -> EnhancedResult {
        let n = p.docs.len();
        assert_eq!(p.labels.len(), n, "labels must cover all docs");
        let k = p.num_classes;
        // --- Channel 1: text naive Bayes over the labelled subset.
        let mut nb = NaiveBayes::new(k, self.opts.nb);
        for (d, label) in p.labels.iter().enumerate() {
            if let Some(c) = label {
                nb.add_document(*c, &p.docs[d]);
            }
        }
        let text_log_post: Vec<Vec<f64>> = (0..n).map(|d| nb.log_posteriors(&p.docs[d])).collect();
        let text_only: Vec<usize> = text_log_post.iter().map(|lp| argmax(lp)).collect();

        // --- Folder groups per document.
        let mut groups_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (g, members) in p.folders.iter().enumerate() {
            for &d in members {
                if d < n {
                    groups_of[d].push(g);
                }
            }
        }

        // --- Initial beliefs.
        let mut beliefs: Vec<Vec<f64>> = (0..n)
            .map(|d| match p.labels[d] {
                Some(c) => one_hot(k, c),
                None => text_log_post[d].iter().map(|&l| l.exp()).collect(),
            })
            .collect();

        // --- Relaxation rounds.
        let gamma = 1e-3; // belief smoothing inside logs
        for _ in 0..self.opts.iterations {
            let mut next = beliefs.clone();
            for d in 0..n {
                if p.labels[d].is_some() {
                    continue; // clamped
                }
                let mut score = vec![0.0f64; k];
                // Text channel.
                for (c, s) in score.iter_mut().enumerate() {
                    *s += self.opts.text_weight * text_log_post[d][c];
                }
                // Link channel: average over in+out neighbours.
                let neighbours: Vec<u32> = p
                    .graph
                    .out_links(d as u32)
                    .iter()
                    .chain(p.graph.in_links(d as u32).iter())
                    .copied()
                    .collect();
                if !neighbours.is_empty() {
                    let inv = self.opts.link_weight / neighbours.len() as f64;
                    for &nb_id in &neighbours {
                        let b = &beliefs[nb_id as usize];
                        for (c, s) in score.iter_mut().enumerate() {
                            *s += inv * ((b[c] + gamma) / (1.0 + gamma * k as f64)).ln();
                        }
                    }
                }
                // Folder channel: average over co-placed documents.
                let mut co: Vec<usize> = Vec::new();
                for &g in &groups_of[d] {
                    co.extend(p.folders[g].iter().copied().filter(|&m| m != d && m < n));
                }
                if !co.is_empty() {
                    let inv = self.opts.folder_weight / co.len() as f64;
                    for &m in &co {
                        let b = &beliefs[m];
                        for (c, s) in score.iter_mut().enumerate() {
                            *s += inv * ((b[c] + gamma) / (1.0 + gamma * k as f64)).ln();
                        }
                    }
                }
                log_normalize(&mut score);
                let lam = self.opts.damping;
                for (c, slot) in next[d].iter_mut().enumerate() {
                    *slot = lam * beliefs[d][c] + (1.0 - lam) * score[c].exp();
                }
                let total: f64 = next[d].iter().sum();
                if total > 0.0 {
                    next[d].iter_mut().for_each(|x| *x /= total);
                }
            }
            beliefs = next;
        }

        let predictions: Vec<usize> = (0..n)
            .map(|d| match p.labels[d] {
                Some(c) => c,
                None => argmax(&beliefs[d]),
            })
            .collect();
        EnhancedResult {
            beliefs,
            predictions,
            text_only,
        }
    }
}

fn one_hot(k: usize, c: usize) -> Vec<f64> {
    let mut v = vec![0.0; k];
    v[c] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the canonical hard case: two topics whose *pages are nearly
    /// textless* but whose links stay within topic. Labelled interior,
    /// unlabelled front pages.
    #[allow(clippy::type_complexity)]
    fn front_page_problem() -> (
        Vec<Vec<(TermId, u32)>>,
        WebGraph,
        Vec<Vec<usize>>,
        Vec<Option<usize>>,
        Vec<usize>,
    ) {
        // Docs 0..10 topic 0, 10..20 topic 1.
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for d in 0..20usize {
            let topic = usize::from(d >= 10);
            truth.push(topic);
            if d % 10 < 6 {
                // Interior pages: rich text, labelled.
                let base: u32 = if topic == 0 { 1 } else { 100 };
                docs.push(vec![(base, 5), (base + 1, 3), (base + 2, 2)]);
                labels.push(Some(topic));
            } else {
                // Front pages: a single ambiguous term, unlabelled.
                docs.push(vec![(999u32, 1u32)]);
                labels.push(None);
            }
        }
        // Links: each front page links to 3 interior pages of its topic.
        let mut g = WebGraph::new();
        g.ensure_node(19);
        for d in 0..20usize {
            if d % 10 >= 6 {
                let base = if d < 10 { 0 } else { 10 };
                for t in 0..3usize {
                    g.add_edge(d as u32, (base + t) as u32);
                }
            }
        }
        // Folders: one user filed front page d with two interior pages.
        let mut folders = Vec::new();
        for d in 0..20usize {
            if d % 10 >= 6 {
                let base = if d < 10 { 3 } else { 13 };
                folders.push(vec![d, base, base + 1]);
            }
        }
        (docs, g, folders, labels, truth)
    }

    #[test]
    fn links_and_folders_rescue_textless_pages() {
        let (docs, g, folders, labels, truth) = front_page_problem();
        let p = EnhancedProblem {
            num_classes: 2,
            docs: &docs,
            graph: &g,
            folders: &folders,
            labels: &labels,
        };
        let result = EnhancedClassifier::new(EnhancedOptions::default()).classify(&p);
        let unlabelled: Vec<usize> = (0..docs.len()).filter(|&d| labels[d].is_none()).collect();
        let enh_correct = unlabelled
            .iter()
            .filter(|&&d| result.predictions[d] == truth[d])
            .count();
        // Text alone cannot beat chance on identical front pages; the
        // enhanced model should get them all.
        assert_eq!(
            enh_correct,
            unlabelled.len(),
            "enhanced should classify every front page"
        );
        let text_correct = unlabelled
            .iter()
            .filter(|&&d| result.text_only[d] == truth[d])
            .count();
        assert!(
            enh_correct > text_correct,
            "enhanced ({enh_correct}) must beat text-only ({text_correct})"
        );
    }

    #[test]
    fn beliefs_stay_normalised() {
        let (docs, g, folders, labels, _) = front_page_problem();
        let p = EnhancedProblem {
            num_classes: 2,
            docs: &docs,
            graph: &g,
            folders: &folders,
            labels: &labels,
        };
        let result = EnhancedClassifier::new(EnhancedOptions::default()).classify(&p);
        for b in &result.beliefs {
            let total: f64 = b.iter().sum();
            assert!((total - 1.0).abs() < 1e-6, "belief sums to {total}");
            assert!(b.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        }
    }

    #[test]
    fn labelled_documents_are_clamped() {
        let (docs, g, folders, labels, _) = front_page_problem();
        let p = EnhancedProblem {
            num_classes: 2,
            docs: &docs,
            graph: &g,
            folders: &folders,
            labels: &labels,
        };
        let result = EnhancedClassifier::new(EnhancedOptions::default()).classify(&p);
        for (d, l) in labels.iter().enumerate() {
            if let Some(c) = l {
                assert_eq!(result.predictions[d], *c);
                assert!((result.beliefs[d][*c] - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_link_and_folder_weights_reduce_to_text_only() {
        let (docs, g, folders, labels, _) = front_page_problem();
        let p = EnhancedProblem {
            num_classes: 2,
            docs: &docs,
            graph: &g,
            folders: &folders,
            labels: &labels,
        };
        let opts = EnhancedOptions {
            link_weight: 0.0,
            folder_weight: 0.0,
            ..Default::default()
        };
        let result = EnhancedClassifier::new(opts).classify(&p);
        for (d, label) in labels.iter().enumerate().take(docs.len()) {
            if label.is_none() {
                assert_eq!(result.predictions[d], result.text_only[d]);
            }
        }
    }

    #[test]
    fn isolated_unlabelled_doc_is_harmless() {
        // One unlabelled doc, no links, no folders: prediction = text NB.
        let docs = vec![vec![(1u32, 2u32)], vec![(2, 2)], vec![(1, 1)]];
        let labels = vec![Some(0), Some(1), None];
        let g = WebGraph::with_nodes(3);
        let folders: Vec<Vec<usize>> = Vec::new();
        let p = EnhancedProblem {
            num_classes: 2,
            docs: &docs,
            graph: &g,
            folders: &folders,
            labels: &labels,
        };
        let result = EnhancedClassifier::new(EnhancedOptions::default()).classify(&p);
        assert_eq!(result.predictions[2], 0);
    }
}
