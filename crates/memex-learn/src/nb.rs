//! Multinomial naive Bayes with Laplace smoothing, Fisher-index feature
//! selection, incremental updates (for the Fig. 1 feedback loop) and a
//! hierarchical variant that classifies by greedy descent through a topic
//! taxonomy — the TAPER recipe of paper ref \[3\].

use std::collections::{HashMap, HashSet};

use memex_text::features::{ClassTermStats, FeatureScore};
use memex_text::vocab::TermId;

use crate::taxonomy::{Taxonomy, TopicId};

/// Naive Bayes configuration.
#[derive(Debug, Clone, Copy)]
pub struct NbOptions {
    /// Laplace/Lidstone smoothing constant α.
    pub smoothing: f64,
}

impl Default for NbOptions {
    fn default() -> Self {
        NbOptions { smoothing: 0.25 }
    }
}

/// A flat multinomial naive Bayes classifier over `num_classes` classes.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    opts: NbOptions,
    class_docs: Vec<f64>,
    /// Per class: term -> token count.
    term_counts: Vec<HashMap<TermId, f64>>,
    /// Per class: total token count (over selected terms when selection is
    /// active — recomputed on selection).
    token_totals: Vec<f64>,
    /// All terms ever seen (smoothing denominator).
    all_terms: HashSet<TermId>,
    /// Binary-presence stats for feature selection.
    presence: ClassTermStats,
    /// Active feature set (None = all terms).
    selected: Option<HashSet<TermId>>,
}

impl NaiveBayes {
    pub fn new(num_classes: usize, opts: NbOptions) -> NaiveBayes {
        assert!(num_classes >= 2, "need at least two classes");
        NaiveBayes {
            opts,
            class_docs: vec![0.0; num_classes],
            term_counts: vec![HashMap::new(); num_classes],
            token_totals: vec![0.0; num_classes],
            all_terms: HashSet::new(),
            presence: ClassTermStats::new(num_classes),
            selected: None,
        }
    }

    pub fn num_classes(&self) -> usize {
        self.class_docs.len()
    }

    /// Total training documents seen.
    pub fn num_docs(&self) -> f64 {
        self.class_docs.iter().sum()
    }

    /// Add one training document (term-frequency pairs). Incremental: the
    /// classifier is usable immediately after, which is exactly how the
    /// folder-tab feedback loop retrains.
    pub fn add_document(&mut self, class: usize, tf: &[(TermId, u32)]) {
        assert!(class < self.num_classes());
        self.class_docs[class] += 1.0;
        for &(t, c) in tf {
            let c = f64::from(c);
            *self.term_counts[class].entry(t).or_insert(0.0) += c;
            if self.selected.as_ref().is_none_or(|s| s.contains(&t)) {
                self.token_totals[class] += c;
            }
            self.all_terms.insert(t);
        }
        self.presence.add_doc(class, tf.iter().map(|&(t, _)| t));
    }

    /// Remove a previously added document (folder-tab *correction*: the
    /// user cut a page out of a folder). Counts clamp at zero.
    pub fn remove_document(&mut self, class: usize, tf: &[(TermId, u32)]) {
        assert!(class < self.num_classes());
        self.class_docs[class] = (self.class_docs[class] - 1.0).max(0.0);
        for &(t, c) in tf {
            let c = f64::from(c);
            if let Some(slot) = self.term_counts[class].get_mut(&t) {
                let dec = slot.min(c);
                *slot -= dec;
                if self.selected.as_ref().is_none_or(|s| s.contains(&t)) {
                    self.token_totals[class] = (self.token_totals[class] - dec).max(0.0);
                }
            }
        }
        // Presence stats are append-only; fine for selection purposes.
    }

    /// Restrict the model to the `k` most discriminative terms (Fisher by
    /// default in TAPER). Pass `None` to deselect.
    pub fn select_features(&mut self, score: FeatureScore, k: usize) {
        let chosen: HashSet<TermId> = self.presence.select_top_k(score, k).into_iter().collect();
        // Recompute token totals over the selected set.
        for (class, counts) in self.term_counts.iter().enumerate() {
            self.token_totals[class] = counts
                .iter()
                .filter(|(t, _)| chosen.contains(*t))
                .map(|(_, &c)| c)
                .sum();
        }
        self.selected = Some(chosen);
    }

    /// Effective vocabulary size for smoothing.
    fn vocab_size(&self) -> f64 {
        match &self.selected {
            Some(s) => s.len().max(1) as f64,
            None => self.all_terms.len().max(1) as f64,
        }
    }

    fn term_active(&self, t: TermId) -> bool {
        self.selected.as_ref().is_none_or(|s| s.contains(&t))
    }

    /// Log-posterior (natural log, normalised) over classes for a document.
    pub fn log_posteriors(&self, tf: &[(TermId, u32)]) -> Vec<f64> {
        let n = self.num_docs().max(1.0);
        let k = self.num_classes() as f64;
        let v = self.vocab_size();
        let alpha = self.opts.smoothing;
        let mut scores: Vec<f64> = (0..self.num_classes())
            .map(|c| ((self.class_docs[c] + 1.0) / (n + k)).ln())
            .collect();
        for &(t, count) in tf {
            if !self.term_active(t) {
                continue;
            }
            for (c, score) in scores.iter_mut().enumerate() {
                let tc = self.term_counts[c].get(&t).copied().unwrap_or(0.0);
                let p = (tc + alpha) / (self.token_totals[c] + alpha * v);
                *score += f64::from(count) * p.ln();
            }
        }
        log_normalize(&mut scores);
        scores
    }

    /// Posterior probabilities (exp of [`Self::log_posteriors`]).
    pub fn posteriors(&self, tf: &[(TermId, u32)]) -> Vec<f64> {
        self.log_posteriors(tf).into_iter().map(f64::exp).collect()
    }

    /// Most probable class.
    pub fn predict(&self, tf: &[(TermId, u32)]) -> usize {
        argmax(&self.log_posteriors(tf))
    }
}

/// Normalise log scores in place so `exp` sums to 1 (log-sum-exp).
pub(crate) fn log_normalize(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        let uniform = -(scores.len().max(1) as f64).ln();
        scores.iter_mut().for_each(|s| *s = uniform);
        return;
    }
    let lse = max + scores.iter().map(|&s| (s - max).exp()).sum::<f64>().ln();
    for s in scores.iter_mut() {
        *s -= lse;
    }
}

pub(crate) fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Hierarchical variant
// ---------------------------------------------------------------------------

/// TAPER-style hierarchical classifier: one small naive Bayes per internal
/// taxonomy node (over its children), classification by greedy descent.
pub struct HierarchicalNB {
    taxonomy: Taxonomy,
    /// internal node -> (child list, classifier over those children).
    routers: HashMap<TopicId, (Vec<TopicId>, NaiveBayes)>,
    opts: NbOptions,
    /// Features per router (Fisher-selected when `feature_k` is set).
    feature_k: Option<usize>,
}

impl HierarchicalNB {
    pub fn new(taxonomy: Taxonomy, opts: NbOptions, feature_k: Option<usize>) -> HierarchicalNB {
        HierarchicalNB {
            taxonomy,
            routers: HashMap::new(),
            opts,
            feature_k,
        }
    }

    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Train from `(leaf topic, tf pairs)` documents. A document labelled
    /// with a leaf contributes to every router on the root→leaf path.
    pub fn train<'a>(
        &mut self,
        docs: impl IntoIterator<Item = (TopicId, &'a [(TermId, u32)])> + Clone,
    ) {
        self.routers.clear();
        // Build router skeletons.
        for node in self.taxonomy.all_topics() {
            let children = self.taxonomy.children(node);
            if children.len() >= 2 {
                self.routers.insert(
                    node,
                    (children.clone(), NaiveBayes::new(children.len(), self.opts)),
                );
            }
        }
        for (leaf, tf) in docs {
            // Walk up from the leaf, feeding each router the child index on
            // the path.
            let mut child = leaf;
            let mut parent = self.taxonomy.parent(leaf);
            while let Some(p) = parent {
                if let Some((children, nb)) = self.routers.get_mut(&p) {
                    if let Some(idx) = children.iter().position(|&c| c == child) {
                        nb.add_document(idx, tf);
                    }
                }
                child = p;
                parent = self.taxonomy.parent(p);
            }
        }
        if let Some(k) = self.feature_k {
            for (_, nb) in self.routers.values_mut() {
                if nb.num_docs() > 0.0 {
                    nb.select_features(FeatureScore::Fisher, k);
                }
            }
        }
    }

    /// Greedy root-to-leaf descent; returns the chosen leaf (or the deepest
    /// node with a trained router).
    pub fn classify(&self, tf: &[(TermId, u32)]) -> TopicId {
        let mut node = Taxonomy::ROOT;
        loop {
            match self.routers.get(&node) {
                Some((children, nb)) if nb.num_docs() > 0.0 => {
                    node = children[nb.predict(tf)];
                }
                _ => {
                    // Single-child chains descend unconditionally.
                    let kids = self.taxonomy.children(node);
                    if kids.len() == 1 {
                        node = kids[0];
                    } else {
                        return node;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny two-topic corpus: music docs use terms {1,2,3}, cycling docs
    /// {10,11,12}, with term 50 common to both.
    fn toy_docs() -> Vec<(usize, Vec<(TermId, u32)>)> {
        let mut docs = Vec::new();
        for i in 0..20u32 {
            if i % 2 == 0 {
                docs.push((0, vec![(1, 2), (2, 1), (3, 1), (50, 1)]));
            } else {
                docs.push((1, vec![(10, 2), (11, 1), (12, 1), (50, 1)]));
            }
        }
        docs
    }

    #[test]
    fn learns_separable_classes() {
        let mut nb = NaiveBayes::new(2, NbOptions::default());
        for (c, tf) in toy_docs() {
            nb.add_document(c, &tf);
        }
        assert_eq!(nb.predict(&[(1, 1), (2, 1)]), 0);
        assert_eq!(nb.predict(&[(10, 1), (12, 3)]), 1);
        let post = nb.posteriors(&[(1, 1), (2, 1)]);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(post[0] > 0.9);
    }

    #[test]
    fn empty_document_falls_back_to_prior() {
        let mut nb = NaiveBayes::new(2, NbOptions::default());
        for _ in 0..9 {
            nb.add_document(0, &[(1, 1)]);
        }
        nb.add_document(1, &[(2, 1)]);
        assert_eq!(nb.predict(&[]), 0, "prior favours the bigger class");
    }

    #[test]
    fn incremental_feedback_corrects_the_model() {
        let mut nb = NaiveBayes::new(2, NbOptions::default());
        // Mislabelled doc initially.
        let tf = vec![(7u32, 3u32)];
        nb.add_document(0, &tf);
        nb.add_document(1, &[(8, 3)]);
        assert_eq!(nb.predict(&tf), 0);
        // User cuts it from folder 0 and pastes into folder 1.
        nb.remove_document(0, &tf);
        nb.add_document(1, &tf);
        assert_eq!(nb.predict(&tf), 1);
    }

    #[test]
    fn feature_selection_drops_noise_terms() {
        let mut nb = NaiveBayes::new(2, NbOptions::default());
        for (c, tf) in toy_docs() {
            nb.add_document(c, &tf);
        }
        nb.select_features(FeatureScore::Fisher, 6);
        // Term 50 is non-discriminative; a doc of only term 50 should give
        // roughly the prior (equal classes here -> near 0.5).
        let post = nb.posteriors(&[(50, 5)]);
        assert!(
            (post[0] - 0.5).abs() < 0.05,
            "noise term should not swing the posterior"
        );
        // Discriminative terms still work.
        assert_eq!(nb.predict(&[(1, 1)]), 0);
    }

    #[test]
    fn posteriors_are_proper_distributions() {
        let mut nb = NaiveBayes::new(3, NbOptions::default());
        nb.add_document(0, &[(1, 1)]);
        nb.add_document(1, &[(2, 1)]);
        nb.add_document(2, &[(3, 1)]);
        for tf in [vec![], vec![(1u32, 1u32)], vec![(9, 4)]] {
            let p = nb.posteriors(&tf);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn hierarchical_descends_to_the_right_leaf() {
        let mut tax = Taxonomy::new();
        let music = tax.add_child(Taxonomy::ROOT, "Music");
        let classical = tax.add_child(music, "Classical");
        let rock = tax.add_child(music, "Rock");
        let sports = tax.add_child(Taxonomy::ROOT, "Sports");
        let cycling = tax.add_child(sports, "Cycling");
        let cricket = tax.add_child(sports, "Cricket");
        // Term layout: shared music term 100, shared sports term 200,
        // leaf-specific 1..4.
        let docs: Vec<(TopicId, Vec<(TermId, u32)>)> = (0..40)
            .map(|i| match i % 4 {
                0 => (classical, vec![(100, 2), (1, 3)]),
                1 => (rock, vec![(100, 2), (2, 3)]),
                2 => (cycling, vec![(200, 2), (3, 3)]),
                _ => (cricket, vec![(200, 2), (4, 3)]),
            })
            .collect();
        let mut h = HierarchicalNB::new(tax, NbOptions::default(), None);
        h.train(docs.iter().map(|(t, v)| (*t, v.as_slice())));
        assert_eq!(h.classify(&[(100, 1), (1, 2)]), classical);
        assert_eq!(h.classify(&[(100, 1), (2, 2)]), rock);
        assert_eq!(h.classify(&[(200, 1), (3, 2)]), cycling);
        assert_eq!(h.classify(&[(200, 1), (4, 2)]), cricket);
        // A doc with only the shared music term still lands under Music.
        let leaf = h.classify(&[(100, 3)]);
        assert!(h.taxonomy().is_ancestor_or_self(music, leaf));
    }
}
