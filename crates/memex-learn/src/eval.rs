//! Evaluation kit: confusion matrices, accuracy/F1, seeded splits and
//! k-fold cross-validation — everything the T1/F1 experiments need to
//! report numbers the way the paper's companion evaluation did.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A k×k confusion matrix (`rows = truth`, `cols = prediction`).
#[derive(Debug, Clone)]
pub struct Confusion {
    k: usize,
    counts: Vec<u64>,
}

impl Confusion {
    pub fn new(num_classes: usize) -> Confusion {
        Confusion {
            k: num_classes,
            counts: vec![0; num_classes * num_classes],
        }
    }

    /// Build from parallel truth/prediction slices.
    pub fn from_pairs(num_classes: usize, truth: &[usize], pred: &[usize]) -> Confusion {
        assert_eq!(truth.len(), pred.len());
        let mut c = Confusion::new(num_classes);
        for (&t, &p) in truth.iter().zip(pred) {
            c.record(t, p);
        }
        c
    }

    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.k && pred < self.k);
        self.counts[truth * self.k + pred] += 1;
    }

    pub fn get(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.k + pred]
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction on the diagonal.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.get(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class precision, recall, F1.
    pub fn per_class(&self) -> Vec<(f64, f64, f64)> {
        (0..self.k)
            .map(|c| {
                let tp = self.get(c, c) as f64;
                let fp: f64 = (0..self.k)
                    .filter(|&t| t != c)
                    .map(|t| self.get(t, c) as f64)
                    .sum();
                let fung: f64 = (0..self.k)
                    .filter(|&p| p != c)
                    .map(|p| self.get(c, p) as f64)
                    .sum();
                let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
                let recall = if tp + fung > 0.0 {
                    tp / (tp + fung)
                } else {
                    0.0
                };
                let f1 = if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                };
                (precision, recall, f1)
            })
            .collect()
    }

    /// Unweighted mean of per-class F1.
    pub fn macro_f1(&self) -> f64 {
        let per = self.per_class();
        if per.is_empty() {
            return 0.0;
        }
        per.iter().map(|&(_, _, f1)| f1).sum::<f64>() / per.len() as f64
    }
}

/// Deterministic shuffled split: returns (train, test) index sets with
/// `test_fraction` of items in the test set (at least 1 of each when
/// possible).
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&test_fraction));
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut n_test = ((n as f64) * test_fraction).round() as usize;
    if n >= 2 {
        n_test = n_test.clamp(1, n - 1);
    }
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// Deterministic k-fold assignment: returns for each fold the (train, test)
/// index sets. Every item appears in exactly one test fold.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2 && k <= n, "need 2 <= k <= n");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &item) in idx.iter().enumerate() {
        folds[i % k].push(item);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_f1_on_known_matrix() {
        // truth:  0 0 0 1 1 1 ; pred: 0 0 1 1 1 0
        let c = Confusion::from_pairs(2, &[0, 0, 0, 1, 1, 1], &[0, 0, 1, 1, 1, 0]);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        let per = c.per_class();
        assert!((per[0].0 - 2.0 / 3.0).abs() < 1e-12, "precision class 0");
        assert!((per[0].1 - 2.0 / 3.0).abs() < 1e-12, "recall class 0");
        assert!((c.macro_f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_zero_not_nan() {
        let c = Confusion::new(3);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.macro_f1(), 0.0);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let (train1, test1) = train_test_split(100, 0.3, 42);
        let (train2, test2) = train_test_split(100, 0.3, 42);
        assert_eq!(train1, train2);
        assert_eq!(test1, test2);
        assert_eq!(test1.len(), 30);
        let mut all: Vec<usize> = train1.iter().chain(&test1).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        let (_, test_other_seed) = train_test_split(100, 0.3, 43);
        assert_ne!(test1, test_other_seed, "seed changes the split");
    }

    #[test]
    fn split_never_empties_either_side() {
        let (train, test) = train_test_split(2, 0.01, 7);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold(23, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut seen = [0u32; 23];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            for &t in test {
                seen[t] += 1;
            }
            // Train and test are disjoint.
            for &t in test {
                assert!(!train.contains(&t));
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}
