//! Semi-supervised naive Bayes via Expectation–Maximisation (Nigam,
//! McCallum, Thrun & Mitchell, 1999/2000 — the contemporaneous technique a
//! 2000-era classification demon would reach for).
//!
//! Memex's demon sits on exactly this data shape: a handful of *labelled*
//! documents (deliberate bookmarks) and a flood of *unlabelled* ones (the
//! rest of the history). EM alternates:
//!
//! * **E-step** — score every unlabelled document with the current model's
//!   posteriors;
//! * **M-step** — retrain with unlabelled documents contributing
//!   *fractionally* (weighted by posterior, scaled by `unlabelled_weight`
//!   so the unlabelled mass cannot drown the labelled evidence).
//!
//! Ablation A5 measures what this buys over supervised-only text and where
//! it stands relative to the link/folder-enhanced classifier.

use memex_text::vocab::TermId;

use crate::nb::{argmax, NaiveBayes, NbOptions};

/// EM configuration.
#[derive(Debug, Clone, Copy)]
pub struct EmOptions {
    /// EM rounds (1 = classic self-training-ish single pass).
    pub iterations: usize,
    /// Scale applied to every unlabelled document's fractional counts
    /// (Nigam et al.'s λ; 0.1–1.0 typical).
    pub unlabelled_weight: f64,
    /// Underlying naive Bayes smoothing.
    pub nb: NbOptions,
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions {
            iterations: 5,
            unlabelled_weight: 0.5,
            nb: NbOptions::default(),
        }
    }
}

/// Result of an EM run.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// Posterior class distribution per document (labelled docs: one-hot).
    pub posteriors: Vec<Vec<f64>>,
    /// Argmax per document.
    pub predictions: Vec<usize>,
    /// Predictions of the purely supervised model (round 0 baseline).
    pub supervised_only: Vec<usize>,
}

/// Weighted multinomial NB trainer used inside the M-step: like
/// [`NaiveBayes`] but documents carry fractional class responsibility.
struct WeightedNb {
    class_docs: Vec<f64>,
    term_counts: Vec<std::collections::HashMap<TermId, f64>>,
    token_totals: Vec<f64>,
    vocab: std::collections::HashSet<TermId>,
    smoothing: f64,
}

impl WeightedNb {
    fn new(k: usize, smoothing: f64) -> WeightedNb {
        WeightedNb {
            class_docs: vec![0.0; k],
            term_counts: vec![std::collections::HashMap::new(); k],
            token_totals: vec![0.0; k],
            vocab: std::collections::HashSet::new(),
            smoothing,
        }
    }

    fn add(&mut self, class: usize, tf: &[(TermId, u32)], weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.class_docs[class] += weight;
        for &(t, c) in tf {
            let w = weight * f64::from(c);
            *self.term_counts[class].entry(t).or_insert(0.0) += w;
            self.token_totals[class] += w;
            self.vocab.insert(t);
        }
    }

    fn log_posteriors(&self, tf: &[(TermId, u32)]) -> Vec<f64> {
        let k = self.class_docs.len();
        let total_docs: f64 = self.class_docs.iter().sum::<f64>().max(1e-9);
        let v = self.vocab.len().max(1) as f64;
        let mut scores: Vec<f64> = (0..k)
            .map(|c| ((self.class_docs[c] + 1.0) / (total_docs + k as f64)).ln())
            .collect();
        for &(t, count) in tf {
            for (c, s) in scores.iter_mut().enumerate() {
                let tc = self.term_counts[c].get(&t).copied().unwrap_or(0.0);
                let p = (tc + self.smoothing) / (self.token_totals[c] + self.smoothing * v);
                *s += f64::from(count) * p.ln();
            }
        }
        crate::nb::log_normalize(&mut scores);
        scores
    }
}

/// Run EM over `docs` where `labels[d]` is `Some(class)` for the labelled
/// subset. Returns posteriors and predictions for every document.
pub fn em_naive_bayes(
    num_classes: usize,
    docs: &[Vec<(TermId, u32)>],
    labels: &[Option<usize>],
    opts: EmOptions,
) -> EmResult {
    assert_eq!(docs.len(), labels.len());
    let n = docs.len();
    // Round 0: purely supervised model.
    let mut supervised = NaiveBayes::new(num_classes, opts.nb);
    for (d, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            supervised.add_document(*c, &docs[d]);
        }
    }
    let mut posteriors: Vec<Vec<f64>> = (0..n)
        .map(|d| match labels[d] {
            Some(c) => one_hot(num_classes, c),
            None => supervised.posteriors(&docs[d]),
        })
        .collect();
    let supervised_only: Vec<usize> = (0..n)
        .map(|d| match labels[d] {
            Some(c) => c,
            None => argmax(&posteriors[d]),
        })
        .collect();
    for _ in 0..opts.iterations {
        // M-step with fractional counts.
        let mut model = WeightedNb::new(num_classes, opts.nb.smoothing);
        for d in 0..n {
            match labels[d] {
                Some(c) => model.add(c, &docs[d], 1.0),
                None => {
                    for (c, &p) in posteriors[d].iter().enumerate() {
                        model.add(c, &docs[d], opts.unlabelled_weight * p);
                    }
                }
            }
        }
        // E-step.
        for d in 0..n {
            if labels[d].is_none() {
                posteriors[d] = model
                    .log_posteriors(&docs[d])
                    .iter()
                    .map(|&l| l.exp())
                    .collect();
            }
        }
    }
    let predictions: Vec<usize> = (0..n)
        .map(|d| match labels[d] {
            Some(c) => c,
            None => argmax(&posteriors[d]),
        })
        .collect();
    EmResult {
        posteriors,
        predictions,
        supervised_only,
    }
}

fn one_hot(k: usize, c: usize) -> Vec<f64> {
    let mut v = vec![0.0; k];
    v[c] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes with overlapping vocabulary; only 2 labelled docs each,
    /// but plenty of unlabelled structure for EM to exploit.
    #[allow(clippy::type_complexity)]
    fn problem() -> (Vec<Vec<(TermId, u32)>>, Vec<Option<usize>>, Vec<usize>) {
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for i in 0..40usize {
            let class = i % 2;
            truth.push(class);
            // Class 0: terms {1,2} strong, {10} weak; class 1 mirrored;
            // term 5 shared. Unlabelled docs carry only one strong term, so
            // the supervised model (trained on 2 docs/class) is shaky.
            let tf = if class == 0 {
                if i < 4 {
                    vec![(1u32, 3u32), (2, 2), (5, 1)]
                } else {
                    vec![(1 + (i as u32 % 2), 1), (5, 1)]
                }
            } else if i < 4 {
                vec![(10u32, 3u32), (11, 2), (5, 1)]
            } else {
                vec![(10 + (i as u32 % 2), 1), (5, 1)]
            };
            docs.push(tf);
            labels.push(if i < 4 { Some(class) } else { None });
        }
        (docs, labels, truth)
    }

    #[test]
    fn em_improves_or_matches_supervised() {
        let (docs, labels, truth) = problem();
        let result = em_naive_bayes(2, &docs, &labels, EmOptions::default());
        let acc = |preds: &[usize]| {
            preds
                .iter()
                .zip(&truth)
                .zip(&labels)
                .filter(|((_, _), l)| l.is_none())
                .filter(|((p, t), _)| p == t)
                .count() as f64
                / labels.iter().filter(|l| l.is_none()).count() as f64
        };
        let em_acc = acc(&result.predictions);
        let sup_acc = acc(&result.supervised_only);
        assert!(
            em_acc >= sup_acc,
            "EM {em_acc} must not be worse than supervised {sup_acc}"
        );
        assert!(em_acc > 0.9, "EM should nearly solve this: {em_acc}");
    }

    #[test]
    fn labelled_docs_are_clamped() {
        let (docs, labels, _) = problem();
        let result = em_naive_bayes(2, &docs, &labels, EmOptions::default());
        for (d, l) in labels.iter().enumerate() {
            if let Some(c) = l {
                assert_eq!(result.predictions[d], *c);
                assert_eq!(result.posteriors[d][*c], 1.0);
            }
        }
    }

    #[test]
    fn posteriors_are_distributions() {
        let (docs, labels, _) = problem();
        let result = em_naive_bayes(2, &docs, &labels, EmOptions::default());
        for p in &result.posteriors {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        }
    }

    #[test]
    fn zero_iterations_equals_supervised() {
        let (docs, labels, _) = problem();
        let opts = EmOptions {
            iterations: 0,
            ..Default::default()
        };
        let result = em_naive_bayes(2, &docs, &labels, opts);
        assert_eq!(result.predictions, result.supervised_only);
    }

    #[test]
    fn all_unlabelled_is_harmless() {
        // No labels at all: the model falls back to priors; must not panic.
        let docs = vec![vec![(1u32, 1u32)], vec![(2, 1)]];
        let labels = vec![None, None];
        let result = em_naive_bayes(2, &docs, &labels, EmOptions::default());
        assert_eq!(result.predictions.len(), 2);
    }
}
