//! Property tests for the learning substrate: taxonomy edits preserve
//! tree well-formedness, naive Bayes posteriors stay proper distributions
//! under arbitrary training streams, and evaluation splits partition.

use proptest::prelude::*;

use memex_learn::eval::{k_fold, train_test_split, Confusion};
use memex_learn::nb::{NaiveBayes, NbOptions};
use memex_learn::taxonomy::{Taxonomy, TopicId};

#[derive(Debug, Clone)]
enum TaxOp {
    AddChild {
        parent_pick: usize,
        name: u8,
    },
    Reparent {
        node_pick: usize,
        parent_pick: usize,
    },
    Remove {
        node_pick: usize,
    },
    Rename {
        node_pick: usize,
        name: u8,
    },
}

fn tax_op() -> impl Strategy<Value = TaxOp> {
    prop_oneof![
        (any::<usize>(), any::<u8>()).prop_map(|(p, n)| TaxOp::AddChild {
            parent_pick: p,
            name: n
        }),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| TaxOp::Reparent {
            node_pick: a,
            parent_pick: b
        }),
        any::<usize>().prop_map(|n| TaxOp::Remove { node_pick: n }),
        (any::<usize>(), any::<u8>()).prop_map(|(p, n)| TaxOp::Rename {
            node_pick: p,
            name: n
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of valid edits keeps the taxonomy well-formed, and
    /// derived queries (paths, depths, lca) stay consistent.
    #[test]
    fn taxonomy_survives_random_edit_sequences(ops in proptest::collection::vec(tax_op(), 0..40)) {
        let mut tax = Taxonomy::new();
        for op in ops {
            let live: Vec<TopicId> = tax.all_topics();
            match op {
                TaxOp::AddChild { parent_pick, name } => {
                    let parent = live[parent_pick % live.len()];
                    tax.add_child(parent, &format!("n{name}"));
                }
                TaxOp::Reparent { node_pick, parent_pick } => {
                    let node = live[node_pick % live.len()];
                    let parent = live[parent_pick % live.len()];
                    if node != Taxonomy::ROOT && !tax.is_ancestor_or_self(node, parent) {
                        tax.reparent(node, parent);
                    }
                }
                TaxOp::Remove { node_pick } => {
                    let node = live[node_pick % live.len()];
                    if node != Taxonomy::ROOT {
                        tax.remove(node);
                    }
                }
                TaxOp::Rename { node_pick, name } => {
                    let node = live[node_pick % live.len()];
                    tax.rename(node, &format!("r{name}"));
                }
            }
            tax.check_invariants().unwrap();
        }
        // Derived queries agree with structure.
        for &t in &tax.all_topics() {
            prop_assert!(tax.is_live(t));
            prop_assert!(tax.is_ancestor_or_self(Taxonomy::ROOT, t));
            prop_assert_eq!(tax.distance(t, t), 0);
            let depth = tax.depth(t);
            if let Some(p) = tax.parent(t) {
                prop_assert_eq!(tax.depth(p) + 1, depth);
                prop_assert_eq!(tax.lca(t, p), p);
            }
            prop_assert!(tax.path(t).starts_with('/'));
        }
        let leaves = tax.leaves();
        for l in leaves {
            prop_assert!(tax.children(l).is_empty());
        }
    }

    /// Posteriors are proper distributions for any training stream and any
    /// query document; predictions are within range.
    #[test]
    fn nb_posteriors_are_proper(
        train in proptest::collection::vec(
            (0usize..3, proptest::collection::vec((0u32..50, 1u32..5), 0..10)), 0..30),
        query in proptest::collection::vec((0u32..60, 1u32..5), 0..10),
    ) {
        let mut nb = NaiveBayes::new(3, NbOptions::default());
        for (class, tf) in &train {
            nb.add_document(*class, tf);
        }
        let post = nb.posteriors(&query);
        prop_assert_eq!(post.len(), 3);
        prop_assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(post.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        prop_assert!(nb.predict(&query) < 3);
    }

    /// Adding then removing a document restores the previous prediction
    /// behaviour (counts round-trip).
    #[test]
    fn nb_remove_undoes_add(
        base in proptest::collection::vec((0usize..2, proptest::collection::vec((0u32..20, 1u32..4), 1..6)), 1..10),
        extra in proptest::collection::vec((0u32..20, 1u32..4), 1..6),
        extra_class in 0usize..2,
        query in proptest::collection::vec((0u32..20, 1u32..4), 1..6),
    ) {
        let mut nb = NaiveBayes::new(2, NbOptions::default());
        // Pin the term universe up front: the smoothing vocabulary
        // (`all_terms`) is append-only by design, so a removed document's
        // *novel* terms would otherwise legitimately shift the denominator.
        let priming: Vec<(u32, u32)> = (0u32..20).map(|t| (t, 1)).collect();
        nb.add_document(0, &priming);
        for (c, tf) in &base {
            nb.add_document(*c, tf);
        }
        let before = nb.log_posteriors(&query);
        nb.add_document(extra_class, &extra);
        nb.remove_document(extra_class, &extra);
        let after = nb.log_posteriors(&query);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!((b - a).abs() < 1e-6, "posterior changed: {b} vs {a}");
        }
    }

    /// k-fold and train/test splits partition the index set exactly.
    #[test]
    fn splits_partition(n in 4usize..60, seed in any::<u64>()) {
        let (train, test) = train_test_split(n, 0.25, seed);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let k = 4.min(n);
        let folds = k_fold(n, k, seed);
        let mut seen = vec![0u8; n];
        for (_, test) in &folds {
            for &t in test {
                seen[t] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Confusion-matrix accuracy is invariant under consistent relabelling
    /// of *predictions and truth together*.
    #[test]
    fn confusion_accuracy_permutation_invariant(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..50),
        offset in 0usize..4,
    ) {
        let truth: Vec<usize> = pairs.iter().map(|&(t, _)| t).collect();
        let pred: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        let a = Confusion::from_pairs(4, &truth, &pred).accuracy();
        let truth2: Vec<usize> = truth.iter().map(|&t| (t + offset) % 4).collect();
        let pred2: Vec<usize> = pred.iter().map(|&p| (p + offset) % 4).collect();
        let b = Confusion::from_pairs(4, &truth2, &pred2).accuracy();
        prop_assert!((a - b).abs() < 1e-12);
    }
}
