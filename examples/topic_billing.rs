//! The §1 personal-accounting questions: "How is my ISP bill divided into
//! access for work, travel, news, hobby and entertainment?" and "What was
//! the URL I visited about six months back regarding X?"
//!
//! ```text
//! cargo run --release --example topic_billing
//! ```

use std::sync::Arc;

use memex::core::memex::{Memex, MemexOptions};
use memex::server::events::{ClientEvent, VisitEvent};
use memex::web::corpus::{Corpus, CorpusConfig};
use memex::web::surfer::{Community, SurferConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 5,
        pages_per_topic: 50,
        ..CorpusConfig::default()
    }));
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: 4,
            sessions_per_user: 15,
            ..SurferConfig::default()
        },
    );
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default())?;
    for u in &community.users {
        memex.register_user(u.user, &format!("user{}", u.user))?;
    }
    let mut bi = 0usize;
    for v in &community.visits {
        while bi < community.bookmarks.len() && community.bookmarks[bi].time <= v.time {
            let b = &community.bookmarks[bi];
            memex.submit(ClientEvent::Bookmark {
                user: b.user,
                page: b.page,
                url: corpus.pages[b.page as usize].url.clone(),
                folder: format!("/{}", b.folder),
                time: b.time,
            });
            bi += 1;
        }
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: v.user,
            session: v.session,
            page: v.page,
            url: corpus.pages[v.page as usize].url.clone(),
            time: v.time,
            referrer: v.referrer,
        }));
    }
    memex.run_demons()?;

    let user = 0u32;
    // --- The ISP bill, split by folder.
    println!("ISP bill breakdown for user {user} (whole history):");
    for line in memex.bill(user, 0, u64::MAX) {
        println!(
            "  {:>6.1}%  {:>9} KB  {:>4} visits  {}",
            100.0 * line.fraction,
            line.bytes / 1024,
            line.visits,
            line.folder
        );
    }
    // Ground truth from the simulator, for comparison.
    println!("\nsimulator ground truth (bytes by true topic):");
    let truth = community.bytes_by_topic(&corpus, user);
    let total: u64 = truth.iter().sum();
    for (t, &bytes) in truth.iter().enumerate() {
        if bytes > 0 {
            println!(
                "  {:>6.1}%  {:>9} KB  /{}",
                100.0 * bytes as f64 / total as f64,
                bytes / 1024,
                corpus.topic_names[t]
            );
        }
    }

    // --- Months-old recall: take a visit from the first tenth of history,
    // query months later with a few words remembered from the page.
    let old = community
        .visits
        .iter()
        .find(|v| v.user == user && !corpus.pages[v.page as usize].is_front)
        .expect("an early interior visit");
    let months_later = community.visits.last().expect("history").time;
    let age_days = (months_later - old.time) / 86_400_000;
    let remembered: Vec<&str> = corpus.pages[old.page as usize]
        .text
        .split_whitespace()
        .take(4)
        .collect();
    let query = remembered.join(" ");
    println!("\nrecall test: page visited {age_days} days ago, querying \"{query}\"");
    let month = 30 * 86_400_000u64;
    let hits = memex.recall(
        user,
        &query,
        old.time.saturating_sub(month),
        old.time + month,
        5,
    )?;
    for (rank, h) in hits.iter().enumerate() {
        let marker = if h.page == old.page {
            "  <-- the page"
        } else {
            ""
        };
        println!("  #{}  {:.2}  {}{}", rank + 1, h.score, h.url, marker);
    }
    Ok(())
}
