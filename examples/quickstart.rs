//! Quickstart: stand up a Memex over a small synthetic web, archive one
//! surfer's session, and ask it things.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use memex::core::memex::{Memex, MemexOptions};
use memex::server::events::{ClientEvent, VisitEvent};
use memex::web::corpus::{Corpus, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A world to browse: 4 topics x 30 pages of synthetic web.
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 4,
        pages_per_topic: 30,
        ..CorpusConfig::default()
    }));
    println!(
        "synthetic web: {} pages, {} links",
        corpus.num_pages(),
        corpus.graph.num_edges()
    );
    println!("topics: {}\n", corpus.topic_names.join(" | "));

    // 2. A Memex server and one registered user.
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default())?;
    let me = 1u32;
    memex.register_user(me, "soumen")?;

    // 3. Surf: follow a short trail on the first topic and bookmark two
    // pages into a folder (the paper's deliberate topic exemplification).
    let trail: Vec<u32> = corpus.pages_of_topic(0).into_iter().take(8).collect();
    let mut t = 1_000u64;
    let mut prev = None;
    for &page in &trail {
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: me,
            session: 1,
            page,
            url: corpus.pages[page as usize].url.clone(),
            time: t,
            referrer: prev,
        }));
        prev = Some(page);
        t += 30_000;
    }
    for &page in trail.iter().skip(5).take(2) {
        memex.submit(ClientEvent::Bookmark {
            user: me,
            page,
            url: corpus.pages[page as usize].url.clone(),
            folder: format!("/{}", corpus.topic_names[0]),
            time: t,
        });
    }
    // A couple of visits on another topic, bookmarked too, so the
    // classifier has two folders to tell apart.
    for &page in corpus.pages_of_topic(2).iter().take(4) {
        t += 30_000;
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: me,
            session: 2,
            page,
            url: corpus.pages[page as usize].url.clone(),
            time: t,
            referrer: None,
        }));
        memex.submit(ClientEvent::Bookmark {
            user: me,
            page,
            url: corpus.pages[page as usize].url.clone(),
            folder: format!("/{}", corpus.topic_names[2]),
            time: t,
        });
    }

    // 4. Let the background demons run (fetch -> index -> classify).
    memex.run_demons()?;
    let stats = memex.server.stats();
    println!(
        "archived: {} events, {} pages fetched+indexed, {} bookmarks\n",
        stats.events_submitted, stats.docs_indexed, stats.bookmarks_recorded
    );

    // 5. The folder tab (Fig. 1): bookmarks are confirmed, the demon's
    // guesses carry a '?'.
    {
        let fs = memex.folder_space(me);
        println!("folder tab:");
        let mut rows: Vec<(String, u32, bool)> = fs
            .assignments()
            .map(|(page, a)| (fs.taxonomy.path(a.folder), page, a.confirmed))
            .collect();
        rows.sort();
        for (path, page, confirmed) in rows {
            println!(
                "  {}{}  {}",
                if confirmed { " " } else { "?" },
                path,
                corpus.pages[page as usize].url
            );
        }
    }

    // 6. Full-text recall over my own history.
    let query = corpus.topic_names[0].clone();
    let hits = memex.recall(me, &query, 0, u64::MAX, 3)?;
    println!("\nrecall(\"{query}\") over my history:");
    for h in &hits {
        println!("  {:.2}  {}", h.score, h.url);
    }

    // 7. The trail tab (Fig. 2): replay my topical browsing context.
    let folder = memex
        .folder_space(me)
        .add_folder(&format!("/{}", corpus.topic_names[0]));
    let ctx = memex.topic_context(me, folder, 0, 10);
    println!(
        "\ntrail tab for /{}: {} pages, {} traversed links",
        corpus.topic_names[0],
        ctx.nodes.len(),
        ctx.edges.len()
    );
    for n in ctx.nodes.iter().take(5) {
        println!(
            "  seen {}x  {}",
            n.visit_count, corpus.pages[n.page as usize].url
        );
    }
    Ok(())
}
