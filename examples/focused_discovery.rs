//! Topic-organised resource discovery (§4 / paper ref [5]): a focused
//! crawler keeps its harvest rate high where blind BFS drifts off topic,
//! and HITS ranks the authorities among what it found.
//!
//! ```text
//! cargo run --release --example focused_discovery
//! ```

use memex::graph::hits::top_authorities;
use memex::learn::nb::{NaiveBayes, NbOptions};
use memex::web::corpus::{Corpus, CorpusConfig};
use memex::web::crawler::{focused_crawl, unfocused_crawl};

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        num_topics: 6,
        pages_per_topic: 400,
        link_locality: 0.8,
        ..CorpusConfig::default()
    });
    let analyzed = corpus.analyze();
    println!(
        "web: {} pages over {} topics; target topic: \"{}\"\n",
        corpus.num_pages(),
        corpus.config.num_topics,
        corpus.topic_names[2]
    );

    // Train the relevance classifier on a third of the pages (the pages
    // the community has already surfed and filed).
    let mut nb = NaiveBayes::new(6, NbOptions::default());
    for p in corpus.pages.iter().filter(|p| p.id % 3 == 0) {
        nb.add_document(p.topic, &analyzed.tf[p.id as usize]);
    }

    let seeds: Vec<u32> = corpus.front_pages_of_topic(2).into_iter().take(3).collect();
    let budget = 400;
    let focused = focused_crawl(&corpus, &analyzed.tf, &nb, 2, &seeds, budget);
    let unfocused = unfocused_crawl(&corpus, &seeds, 2, budget);

    println!("harvest rate (cumulative on-topic fraction):");
    println!("  pages   focused   unfocused-BFS");
    for ((n, f), (_, u)) in focused
        .harvest_curve(budget / 8)
        .iter()
        .zip(unfocused.harvest_curve(budget / 8))
    {
        println!("  {:>5}   {:>6.1}%   {:>6.1}%", n, 100.0 * f, 100.0 * u);
    }
    println!(
        "\ncumulative: focused {:.1}% vs unfocused {:.1}% (topic base rate {:.1}%)",
        100.0 * focused.harvest_rate(),
        100.0 * unfocused.harvest_rate(),
        100.0 / corpus.config.num_topics as f64
    );

    // Rank the discovered on-topic pages by authority (HITS).
    let discovered: Vec<u32> = focused
        .order
        .iter()
        .zip(&focused.on_topic)
        .filter(|&(_, &on)| on)
        .map(|(&p, _)| p)
        .collect();
    println!(
        "\ntop authorities among the {} discovered on-topic pages:",
        discovered.len()
    );
    for (page, auth) in top_authorities(&corpus.graph, &discovered, 5) {
        println!("  auth {:.3}  {}", auth, corpus.pages[page as usize].url);
    }
}
