//! Community archiving and mining: a simulated group of surfers shares a
//! Memex; we then replay topical contexts (Fig. 2), consolidate the
//! community theme taxonomy (Fig. 4), place a user on the interest map and
//! find their nearest fellow surfers.
//!
//! ```text
//! cargo run --release --example community_trails
//! ```

use std::sync::Arc;

use memex::core::memex::{Memex, MemexOptions};
use memex::server::events::{ClientEvent, VisitEvent};
use memex::web::corpus::{Corpus, CorpusConfig};
use memex::web::surfer::{Community, SurferConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 6,
        pages_per_topic: 60,
        ..CorpusConfig::default()
    }));
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: 10,
            sessions_per_user: 12,
            ..SurferConfig::default()
        },
    );
    println!(
        "community: {} users, {} visits, {} bookmarks over ~6 months of virtual time\n",
        community.users.len(),
        community.visits.len(),
        community.bookmarks.len()
    );

    // Archive everything through the server (events in time order).
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default())?;
    for u in &community.users {
        memex.register_user(u.user, &format!("user{}", u.user))?;
    }
    let mut bi = 0usize;
    for v in &community.visits {
        while bi < community.bookmarks.len() && community.bookmarks[bi].time <= v.time {
            let b = &community.bookmarks[bi];
            memex.submit(ClientEvent::Bookmark {
                user: b.user,
                page: b.page,
                url: corpus.pages[b.page as usize].url.clone(),
                folder: format!("/{}", b.folder),
                time: b.time,
            });
            bi += 1;
        }
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: v.user,
            session: v.session,
            page: v.page,
            url: corpus.pages[v.page as usize].url.clone(),
            time: v.time,
            referrer: v.referrer,
        }));
    }
    memex.run_demons()?;

    // Fig. 2 — the trail tab for user 0's primary interest.
    let user = community.users[0].user;
    let topic = community.users[0].interests[0];
    let folder = memex
        .folder_space(user)
        .add_folder(&format!("/{}", corpus.topic_names[topic]));
    let ctx = memex.topic_context(user, folder, 0, 12);
    println!(
        "trail tab — /{} (community context):",
        corpus.topic_names[topic]
    );
    for n in ctx.nodes.iter().take(8) {
        println!(
            "  seen {:>2}x  {}",
            n.visit_count, corpus.pages[n.page as usize].url
        );
    }
    println!(
        "  ({} traversed links among these pages)\n",
        ctx.edges.len()
    );

    // Fig. 4 — the community theme taxonomy.
    let (themes, _docs) = memex.community_themes().clone();
    println!(
        "community themes: {} themes from {} folders ({} merges, {} refinements, {} coarsenings)",
        themes.themes.len(),
        themes.folder_theme.len(),
        themes.merges,
        themes.refines,
        themes.coarsens
    );
    for theme in themes.themes.iter().take(8) {
        println!(
            "  {}  [{} docs, {} users]",
            themes.taxonomy.path(theme.topic),
            theme.docs.len(),
            theme.users.len()
        );
    }

    // "Where and how do I fit into that map?"
    println!("\nuser {user}'s place on the map:");
    for (path, weight) in memex.my_place(user).into_iter().take(4) {
        println!("  {:>5.1}%  {}", 100.0 * weight, path);
    }

    // "Who shares my interests most closely?"
    println!("\nmost similar surfers to user {user} (theme-profile cosine):");
    for (v, sim) in memex.similar_surfers(user, 3) {
        let shared: Vec<&str> = community.users[v as usize]
            .interests
            .iter()
            .filter(|t| community.users[0].interests.contains(t))
            .map(|&t| corpus.topic_names[t].as_str())
            .collect();
        println!(
            "  user{v}  sim {:.2}  (truly shares: {})",
            sim,
            if shared.is_empty() {
                "-".into()
            } else {
                shared.join(", ")
            }
        );
    }

    // "What's new on my topic that I haven't seen?"
    let horizon = community.visits[community.visits.len() / 2].time;
    let fresh = memex.whats_new(user, folder, horizon, 5);
    println!(
        "\nnew authoritative pages on /{} since mid-history:",
        corpus.topic_names[topic]
    );
    for (page, auth) in fresh {
        println!("  auth {:.3}  {}", auth, corpus.pages[page as usize].url);
    }
    Ok(())
}
