//! A guided tour of every Memex capability on one simulated community —
//! the closest thing to the original demo session.
//!
//! ```text
//! cargo run --release --example memex_tour
//! ```

use std::sync::Arc;

use memex::cluster::scatter::ScatterGather;
use memex::core::memex::{Memex, MemexOptions};
use memex::core::servlet::{dispatch, Request, Response};
use memex::graph::related::related_pages;
use memex::server::events::{ClientEvent, VisitEvent};
use memex::web::corpus::{Corpus, CorpusConfig};
use memex::web::surfer::{Community, SurferConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Memex tour: archiving and mining a community's surf trails ===\n");
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        num_topics: 5,
        pages_per_topic: 60,
        ..CorpusConfig::default()
    }));
    let community = Community::simulate(
        &corpus,
        &SurferConfig {
            num_users: 8,
            sessions_per_user: 10,
            ..SurferConfig::default()
        },
    );
    let mut memex = Memex::new(corpus.clone(), MemexOptions::default())?;
    for u in &community.users {
        memex.register_user(u.user, &format!("user{}", u.user))?;
    }
    let mut bi = 0usize;
    for v in &community.visits {
        while bi < community.bookmarks.len() && community.bookmarks[bi].time <= v.time {
            let b = &community.bookmarks[bi];
            memex.submit(ClientEvent::Bookmark {
                user: b.user,
                page: b.page,
                url: corpus.pages[b.page as usize].url.clone(),
                folder: format!("/{}", b.folder),
                time: b.time,
            });
            bi += 1;
        }
        memex.submit(ClientEvent::Visit(VisitEvent {
            user: v.user,
            session: v.session,
            page: v.page,
            url: corpus.pages[v.page as usize].url.clone(),
            time: v.time,
            referrer: v.referrer,
        }));
    }
    memex.run_demons()?;
    let s = memex.server.stats();
    println!(
        "[archive] {} events in, {} pages indexed, {} bookmarks filed, 0 discarded\n",
        s.events_submitted, s.docs_indexed, s.bookmarks_recorded
    );

    let user = community.users[0].user;
    let topic = community.users[0].interests[0];

    // --- 1. Ranked recall with snippets.
    println!("[1] ranked recall: \"{}\"", corpus.topic_names[topic]);
    for h in memex.recall(user, &corpus.topic_names[topic], 0, u64::MAX, 3)? {
        println!("    {:.2}  {}\n          \"{}\"", h.score, h.url, h.snippet);
    }

    // --- 2. Exact phrase recall.
    let sample = corpus
        .pages
        .iter()
        .find(|p| !p.is_front && memex.server.trails.user_pages(user, 0).contains(&p.id))
        .expect("a visited interior page");
    let phrase: String = sample
        .text
        .split_whitespace()
        .take(3)
        .collect::<Vec<_>>()
        .join(" ");
    println!("\n[2] phrase recall: \"{phrase}\"");
    for h in memex.recall_phrase(user, &phrase, 0, u64::MAX, 3)? {
        println!("    {}", h.url);
    }

    // --- 3. Trail tab.
    let folder = memex
        .folder_space(user)
        .add_folder(&format!("/{}", corpus.topic_names[topic]));
    let ctx = memex.topic_context(user, folder, 0, 8);
    println!(
        "\n[3] trail tab /{}: {} pages, {} links",
        corpus.topic_names[topic],
        ctx.nodes.len(),
        ctx.edges.len()
    );

    // --- 4. Folder proposals for loose pages.
    println!("\n[4] proposed folders for unfiled history:");
    for p in memex.propose_folders(user, 4).into_iter().take(3) {
        println!("    \"{}\"  ({} pages)", p.name, p.pages.len());
    }

    // --- 5. Scatter/Gather browsing over the user's whole history.
    let pages = memex.server.trails.user_pages(user, 0);
    let docs: Vec<memex::text::vector::SparseVec> =
        pages.iter().filter_map(|&p| memex.page_vector(p)).collect();
    let sg = ScatterGather::new(&docs, &memex.server.vocab, 4, 1);
    println!("\n[5] scatter/gather over {} history pages:", docs.len());
    for view in sg.scatter() {
        println!(
            "    [{} docs] {}",
            view.members.len(),
            view.summary.join(", ")
        );
    }

    // --- 6. Related pages by pure link structure.
    let anchor = ctx.nodes.first().expect("context non-empty").page;
    println!(
        "\n[6] link-structure neighbours of {}:",
        corpus.pages[anchor as usize].url
    );
    for (p, sim) in related_pages(&memex.server.web, anchor, 3) {
        println!("    {:.3}  {}", sim, corpus.pages[p as usize].url);
    }

    // --- 7. Community map + my place + similar surfers.
    let (themes, _) = memex.community_themes().clone();
    println!(
        "\n[7] community themes ({} themes, {} merges/{} refines/{} coarsens):",
        themes.themes.len(),
        themes.merges,
        themes.refines,
        themes.coarsens
    );
    println!("    my place: {:?}", memex.my_place(user).first());
    println!("    similar surfers: {:?}", memex.similar_surfers(user, 2));

    // --- 8. Recommendation + bill via the servlet boundary.
    if let Response::Recommend(recs) = dispatch(&mut memex, Request::Recommend { user, k: 3 }) {
        println!("\n[8] recommendations: {recs:?}");
    }
    if let Response::Bill(lines) = dispatch(
        &mut memex,
        Request::Bill {
            user,
            since: 0,
            until: u64::MAX,
        },
    ) {
        println!(
            "    bill: {} folders, top = {} ({:.0}%)",
            lines.len(),
            lines[0].folder,
            100.0 * lines[0].fraction
        );
    }
    println!("\ntour complete.");
    Ok(())
}
