//! Facade crate re-exporting the entire Memex workspace.
pub use memex_cluster as cluster;
pub use memex_core as core;
pub use memex_graph as graph;
pub use memex_index as index;
pub use memex_learn as learn;
pub use memex_net as net;
pub use memex_obs as obs;
pub use memex_server as server;
pub use memex_store as store;
pub use memex_text as text;
pub use memex_web as web;
