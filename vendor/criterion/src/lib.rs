//! Offline, `std`-only stand-in for the subset of the `criterion` API this
//! workspace's benches use. It is a thin wall-clock harness, not a
//! statistics engine: each `bench_function` runs a warmup pass, then
//! `sample_size` timed batches, and prints mean / best per-iteration time
//! (plus throughput when provided). Run under `cargo bench`; when invoked
//! without `--bench` (e.g. by `cargo test`) every benchmark body executes
//! exactly once as a smoke check.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for per-element / per-byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Full timing (cargo bench).
    Bench,
    /// One iteration per benchmark (cargo test on a harness=false target).
    Smoke,
}

/// Top-level harness handle.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if bench { Mode::Bench } else { Mode::Smoke },
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(self.mode, sample_size, None, id, f);
        self
    }
}

/// A named group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.mode, samples, self.throughput, id, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times one batch.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    mode: Mode,
    samples: usize,
    throughput: Option<Throughput>,
    id: &str,
    mut f: F,
) {
    match mode {
        Mode::Smoke => {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("  {id}: ok (smoke, 1 iter in {:?})", b.elapsed);
        }
        Mode::Bench => {
            // Warmup also calibrates how many iterations fit a sample.
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per_iter = b.elapsed.max(Duration::from_nanos(1));
            let target = Duration::from_millis(50);
            let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
            let mut total = Duration::ZERO;
            let mut best = Duration::MAX;
            for _ in 0..samples {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                let per = b.elapsed / iters as u32;
                total += per;
                best = best.min(per);
            }
            let mean = total / samples as u32;
            let rate = throughput
                .map(|t| match t {
                    Throughput::Elements(n) => {
                        format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
                    }
                    Throughput::Bytes(n) => {
                        format!(
                            " ({:.0} MiB/s)",
                            n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                        )
                    }
                })
                .unwrap_or_default();
            println!(
                "  {id}: mean {mean:?}, best {best:?} over {samples} samples x {iters} iters{rate}"
            );
        }
    }
}

/// `criterion_group!(benches, f1, f2, …)`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// `criterion_main!(benches)`
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
