//! Deterministic RNG and per-case error plumbing for the `proptest!` runner.

/// Per-test deterministic RNG (splitmix64). Seeded from the test name so
/// every test gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from the test name (FNV-1a), overridable with the
    /// `PROPTEST_SEED` environment variable for replaying a run.
    pub fn for_test(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n = 0` returns 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case, generate another.
    Reject(String),
    /// `prop_assert*` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (only `cases` is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}
