//! Offline, `std`-only stand-in for the subset of `proptest` this workspace
//! uses. The build environment cannot reach a crates registry, so the real
//! crate is replaced by this generation-only engine: strategies produce
//! random values from a deterministic per-test RNG and the `proptest!` macro
//! runs each body `ProptestConfig::cases` times. There is **no shrinking** —
//! a failing case reports the assertion message and the case number.
//!
//! Supported surface (everything the repo's tests touch):
//! * `Strategy` with `prop_map` / `boxed`, ranges (`0u32..20`, `1u8..=255`,
//!   float ranges), tuple strategies up to arity 6, `Just`, `any::<T>()`
//! * regex-ish `&str` strategies: `"[a-z]{1,20}"`, `".{0,12}"`, `"\\PC{0,80}"`
//! * `proptest::collection::{vec, btree_set}`
//! * `prop_oneof!` (weighted and unweighted), `proptest!`,
//!   `prop_assert!`/`_eq!`/`_ne!`, `prop_assume!`, `ProptestConfig::with_cases`

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size bounds for generated collections (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max_excl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_excl - self.min) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, 1..40)`
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `proptest::collection::btree_set(element, 0..200)`
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `prop_oneof![...]` — union of strategies, optionally weighted
/// (`3 => strat`). All arms must share one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, $($fmt)*);
            }
        }
    };
}

/// Skip the current case without counting it towards `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The test-block macro: each contained `#[test] fn name(arg in strategy, …)`
/// becomes a normal `#[test]` that generates inputs and runs the body
/// `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    if rejected > config.cases.saturating_mul(20) + 1000 {
                        panic!(
                            "proptest {}: too many prop_assume rejections ({rejected})",
                            stringify!($name)
                        );
                    }
                    let ($($arg,)+) = (
                        $( $crate::strategy::Strategy::generate(&{ $strat }, &mut rng) ,)+
                    );
                    let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body }; ::std::result::Result::Ok(()) })();
                    match case {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}/{}:\n{}",
                                stringify!($name), accepted + 1, config.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
