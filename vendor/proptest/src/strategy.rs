//! Value-generation strategies: the `Strategy` trait and the combinators the
//! workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed to total")
    }
}

// ---- primitive `any` --------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<u64>()` — full-range strategy for a primitive.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- ranges -----------------------------------------------------------------

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as i128) + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

// ---- tuples -----------------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, G);

// ---- regex-ish string strategies -------------------------------------------

/// One parsed pattern atom.
enum Atom {
    /// Inclusive char ranges (a literal is a one-char range).
    Class(Vec<(char, char)>),
    /// `.` or `\PC`: any printable, non-control character.
    Printable,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parse the small regex subset the tests use: sequences of
/// `[class]`, `.`, `\PC` or literal chars, each with an optional
/// `{m}`, `{m,n}`, `*`, `+` or `?` repeat.
fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [class] in pattern {pat:?}");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '.' => {
                i += 1;
                Atom::Printable
            }
            '\\' => {
                // Only `\PC` ("not a control char") plus literal escapes.
                if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' {
                    i += 3;
                    Atom::Printable
                } else {
                    assert!(i + 1 < chars.len(), "dangling backslash in pattern {pat:?}");
                    i += 2;
                    Atom::Class(vec![(chars[i - 1], chars[i - 1])])
                }
            }
            c => {
                i += 1;
                Atom::Class(vec![(c, c)])
            }
        };
        // Optional repeat suffix.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated {{}} in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let r = match chars[i] {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            };
            i += 1;
            r
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repeat {{{min},{max}}} in pattern {pat:?}");
        out.push(Piece { atom, min, max });
    }
    out
}

/// Mostly printable ASCII, occasionally multi-byte codepoints so UTF-8
/// handling gets exercised (matters for the order-preservation tests).
const WIDE_CHARS: &[char] = &['é', 'ß', 'λ', 'Ж', '世', '界', '\u{2603}', '\u{1F980}'];

fn gen_printable(rng: &mut TestRng) -> char {
    if rng.below(10) == 0 {
        WIDE_CHARS[rng.below(WIDE_CHARS.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
            for _ in 0..n {
                match &p.atom {
                    Atom::Printable => out.push(gen_printable(rng)),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(lo, hi) in ranges {
                            let span = hi as u64 - lo as u64 + 1;
                            if pick < span {
                                out.push(
                                    char::from_u32(lo as u32 + pick as u32)
                                        .expect("char class range"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let (a, b) = (0u32..20, 1u32..=4).generate(&mut rng);
            assert!(a < 20);
            assert!((1..=4).contains(&b));
        }
    }

    #[test]
    fn string_patterns_respect_class_and_len() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..500 {
            let s = "[a-z]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = "\\PC{0,80}".generate(&mut rng);
            assert!(t.chars().count() <= 80);
            assert!(t.chars().all(|c| !c.is_control()), "{t:?}");
            let d = ".{0,12}".generate(&mut rng);
            assert!(d.chars().count() <= 12);
        }
    }

    #[test]
    fn union_honours_weights_roughly() {
        let u = crate::prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::from_seed(3);
        let ones = (0..10_000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!((8_500..=9_500).contains(&ones), "{ones}");
    }

    #[test]
    fn collections_hit_size_bounds() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(any::<u32>(), 0..50).generate(&mut rng);
            assert!(s.len() < 50);
        }
    }
}
