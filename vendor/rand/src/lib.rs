//! Offline, `std`-only stand-in for the subset of the `rand` 0.8 API this
//! workspace uses (`StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `SliceRandom::{shuffle, choose}`). The build environment has no registry
//! access, so the real crate cannot be fetched; everything here is
//! deterministic given the seed, which is all the callers rely on.
//!
//! The generator is xoshiro256** seeded via splitmix64 — not cryptographic,
//! statistically solid for simulation workloads.

pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> StdRng {
            // splitmix64 stream expands the seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Raw 64-bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` without noticeable modulo bias for the
/// range sizes used here.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling on the top zone.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::{uniform_below, Rng};

    /// Slice helpers (`shuffle` is the only one the workspace needs, but
    /// `choose` is cheap to keep for future callers).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
